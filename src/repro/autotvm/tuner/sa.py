"""Simulated-annealing model optimizer (AutoTVM's ``SimulatedAnnealingOptimizer``).

AutoTVM's XGBTuner does not rank a random pool by default — it runs parallel
simulated annealing over knob-index states to *optimize* the cost model's
prediction, then measures the best states found. This module provides that
optimizer; :class:`~repro.autotvm.tuner.xgb_tuner.XGBTuner` selects it with
``plan_optimizer="sa"``.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.common.errors import TuningError
from repro.common.rng import ensure_rng

#: Scores states (lower = better predicted cost); batch interface.
ScoreFn = Callable[[Sequence[tuple[int, ...]]], np.ndarray]


class SimulatedAnnealingOptimizer:
    """Parallel SA over mixed-radix knob states minimizing a model score."""

    def __init__(
        self,
        gene_sizes: Sequence[int],
        n_chains: int = 64,
        n_steps: int = 80,
        temp_start: float = 1.0,
        temp_end: float = 0.02,
        seed: "int | np.random.Generator | None" = None,
    ) -> None:
        if not gene_sizes or any(g < 1 for g in gene_sizes):
            raise TuningError(f"invalid gene sizes {list(gene_sizes)}")
        if n_chains < 1 or n_steps < 1:
            raise TuningError("n_chains and n_steps must be >= 1")
        if not 0 < temp_end <= temp_start:
            raise TuningError("temperatures must satisfy 0 < temp_end <= temp_start")
        self.gene_sizes = [int(g) for g in gene_sizes]
        self.n_chains = n_chains
        self.n_steps = n_steps
        self.temp_start = temp_start
        self.temp_end = temp_end
        self.rng = ensure_rng(seed)

    def _random_state(self) -> tuple[int, ...]:
        return tuple(int(self.rng.integers(g)) for g in self.gene_sizes)

    def _neighbor(self, state: tuple[int, ...]) -> tuple[int, ...]:
        """Mutate one knob: ±1 step (local) or a uniform redraw (escape)."""
        i = int(self.rng.integers(len(state)))
        out = list(state)
        size = self.gene_sizes[i]
        if size > 1 and self.rng.random() < 0.7:
            step = int(self.rng.choice((-1, 1)))
            out[i] = int(np.clip(state[i] + step, 0, size - 1))
        else:
            out[i] = int(self.rng.integers(size))
        return tuple(out)

    def find_maximums(
        self,
        score_fn: ScoreFn,
        num: int,
        exclude: "set[tuple[int, ...]] | None" = None,
        seeds: Sequence[tuple[int, ...]] = (),
    ) -> list[tuple[int, ...]]:
        """The best ``num`` distinct states found by annealing.

        (Named after AutoTVM's API; this implementation *minimizes* the score,
        consistent with cost prediction.) ``exclude`` states never appear in
        the result; ``seeds`` warm-start some chains (e.g. from good measured
        configs).
        """
        exclude = exclude or set()
        states = [tuple(s) for s in seeds][: self.n_chains]
        while len(states) < self.n_chains:
            states.append(self._random_state())
        scores = np.asarray(score_fn(states), dtype=float)

        # Track the best distinct states seen across the whole anneal.
        best: dict[tuple[int, ...], float] = {
            s: float(c) for s, c in zip(states, scores) if s not in exclude
        }

        temps = np.linspace(self.temp_start, self.temp_end, self.n_steps)
        for temp in temps:
            proposals = [self._neighbor(s) for s in states]
            prop_scores = np.asarray(score_fn(proposals), dtype=float)
            delta = prop_scores - scores
            exponent = np.clip(-delta / max(temp, 1e-9), -700.0, 0.0)
            accept = (delta <= 0) | (self.rng.random(self.n_chains) < np.exp(exponent))
            for i in range(self.n_chains):
                if accept[i]:
                    states[i] = proposals[i]
                    scores[i] = prop_scores[i]
                    if states[i] not in exclude:
                        cur = best.get(states[i])
                        if cur is None or scores[i] < cur:
                            best[states[i]] = float(scores[i])
        ranked = sorted(best.items(), key=lambda kv: kv[1])
        return [s for s, _ in ranked[:num]]
