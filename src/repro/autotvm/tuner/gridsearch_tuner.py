"""GridSearchTuner: enumerate the space in grid order.

AutoTVM's grid order walks the linear index from 0, i.e. the first-defined knob
varies fastest and enumeration starts with every knob at its *first* candidate.
With ascending tiling-factor lists that is the all-smallest-tiles corner — the
most launch-bound, lowest-efficiency region — which is exactly why the paper
finds GridSearchTuner "performed the worst for all the experiments": 100 trials
never escape the bad corner of a 400..228M-point space.
"""

from __future__ import annotations

from repro.autotvm.space import ConfigEntity
from repro.autotvm.task import Task
from repro.autotvm.tuner.base import Tuner


class GridSearchTuner(Tuner):
    """Deterministic sequential enumeration."""

    def __init__(self, task: Task, seed: int | None = None) -> None:
        super().__init__(task, seed=seed)
        self._cursor = 0

    def next_batch(self, batch_size: int) -> list[ConfigEntity]:
        out: list[ConfigEntity] = []
        n = len(self.space)
        while self._cursor < n and len(out) < batch_size:
            if self._cursor not in self.visited:
                out.append(self.space.get(self._cursor))
            self._cursor += 1
        return out

    def has_next(self) -> bool:
        return self._cursor < len(self.space)
