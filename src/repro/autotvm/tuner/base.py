"""Tuner base class: the AutoTVM tuning loop.

Subclasses implement the strategy (``next_batch`` / ``update``); the base class
owns the loop — batched measurement through a :class:`Measurer`, visited-set
bookkeeping, best tracking, tuning records, and early stopping.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence

from repro.autotvm.measure import Measurer
from repro.autotvm.record import TuningRecord
from repro.autotvm.space import ConfigEntity
from repro.autotvm.task import Task
from repro.common.errors import TuningError
from repro.common.rng import ensure_rng
from repro.runtime.measure import MeasureResult

TuneCallback = Callable[["Tuner", Sequence[ConfigEntity], Sequence[MeasureResult]], None]


class Tuner:
    """Base tuner; subclasses provide the candidate-selection strategy."""

    #: Configs measured per batch (AutoTVM default parallelism).
    batch_size = 8

    def __init__(self, task: Task, seed: int | None = None) -> None:
        self.task = task
        self.space = task.space
        self.rng = ensure_rng(seed)
        self.visited: set[int] = set()
        self.records: list[TuningRecord] = []
        self.best_cost: float = math.inf
        self.best_config: ConfigEntity | None = None
        self.n_trials = 0

    # -- strategy interface -------------------------------------------------

    def has_next(self) -> bool:
        return len(self.visited) < len(self.space)

    def next_batch(self, batch_size: int) -> list[ConfigEntity]:
        raise NotImplementedError

    def update(
        self, configs: Sequence[ConfigEntity], results: Sequence[MeasureResult]
    ) -> None:
        """Strategy hook called after each measured batch (default: no-op)."""

    # -- shared helpers ----------------------------------------------------

    def _random_unvisited(self, batch_size: int) -> list[ConfigEntity]:
        """Uniformly random unvisited configs (used by several strategies)."""
        out: list[ConfigEntity] = []
        n = len(self.space)
        attempts = 0
        while len(out) < batch_size and len(self.visited) + len(out) < n:
            idx = int(self.rng.integers(n))
            if idx in self.visited or any(c.index == idx for c in out):
                attempts += 1
                if attempts > 10 * batch_size + 100:
                    # Dense visited set: fall back to scanning.
                    for idx2 in range(n):
                        if idx2 not in self.visited and all(c.index != idx2 for c in out):
                            out.append(self.space.get(idx2))
                            if len(out) >= batch_size:
                                break
                    break
                continue
            out.append(self.space.get(idx))
        return out

    # -- the loop --------------------------------------------------------------

    def tune(
        self,
        n_trial: int,
        measurer: Measurer,
        early_stopping: int | None = None,
        callbacks: Sequence[TuneCallback] = (),
    ) -> list[TuningRecord]:
        """Run up to ``n_trial`` measurements; returns all tuning records."""
        if n_trial < 1:
            raise TuningError(f"n_trial must be >= 1, got {n_trial}")
        if early_stopping is not None and early_stopping < 1:
            raise TuningError(f"early_stopping must be >= 1, got {early_stopping}")

        last_improvement = 0
        while self.n_trials < n_trial and self.has_next():
            want = min(self.batch_size, n_trial - self.n_trials)
            batch = self.next_batch(want)
            if not batch:
                break
            results = measurer.measure_batch(batch)
            for config, result in zip(batch, results):
                self.visited.add(config.index)
                rec = TuningRecord.from_result(self.task.name, type(self).__name__, result)
                self.records.append(rec)
                self.n_trials += 1
                if rec.ok and rec.mean_cost < self.best_cost:
                    self.best_cost = rec.mean_cost
                    self.best_config = config
                    last_improvement = self.n_trials
            self.update(batch, results)
            for cb in callbacks:
                cb(self, batch, results)
            if (
                early_stopping is not None
                and self.n_trials - last_improvement >= early_stopping
            ):
                break
        return self.records

    # -- results ------------------------------------------------------------

    def best(self) -> tuple[dict[str, int], float]:
        if self.best_config is None:
            raise TuningError("best() called before any successful trial")
        return self.best_config.to_dict(), self.best_cost

    def trajectory(self) -> list[tuple[float, float]]:
        """(process time, runtime) per evaluation, for the paper's figures."""
        return [
            (r.timestamp, r.mean_cost if r.ok else float("inf")) for r in self.records
        ]
