"""RandomTuner: enumerate the space in a random order (without replacement)."""

from __future__ import annotations

from repro.autotvm.space import ConfigEntity
from repro.autotvm.task import Task
from repro.autotvm.tuner.base import Tuner

#: Below this size the whole index permutation is materialized; above it,
#: rejection sampling against the visited set is cheaper than a 100M shuffle.
_SHUFFLE_LIMIT = 1_000_000


class RandomTuner(Tuner):
    """Uniform random search without repeats."""

    def __init__(self, task: Task, seed: int | None = None) -> None:
        super().__init__(task, seed=seed)
        n = len(self.space)
        self._order = self.rng.permutation(n) if n <= _SHUFFLE_LIMIT else None
        self._cursor = 0

    def next_batch(self, batch_size: int) -> list[ConfigEntity]:
        if self._order is None:
            return self._random_unvisited(batch_size)
        out: list[ConfigEntity] = []
        while self._cursor < len(self._order) and len(out) < batch_size:
            idx = int(self._order[self._cursor])
            self._cursor += 1
            if idx not in self.visited:
                out.append(self.space.get(idx))
        return out
