"""AutoTVM's measurement pipeline (builder + runner batch semantics).

AutoTVM measures candidates in batches: a parallel builder compiles
``n_parallel`` configs concurrently, then the runner executes each ``number``
times (per ``repeat``). The batch structure is why AutoTVM's *process time* per
evaluation differs from ytopt's: compilation is amortized across the batch
while execution is repeated — the mechanism behind the paper's observation that
AutoTVM can be faster per evaluation at LARGE sizes (compile-dominated) but
much slower at EXTRALARGE (runtime-dominated, 3–4 runs of a 14-second kernel).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.autotvm.space import ConfigEntity
from repro.common.errors import TuningError
from repro.runtime.measure import Evaluator, MeasureResult
from repro.runtime.parallel import evaluate_batch
from repro.telemetry.context import get_telemetry
from repro.telemetry.events import TrialMeasured


@dataclass(frozen=True)
class MeasureOption:
    """Measurement settings (AutoTVM ``measure_option``).

    ``jobs`` is the *runner* parallelism: >1 measures each batch in waves of
    ``jobs`` configurations through :func:`repro.runtime.parallel.evaluate_batch`
    (real worker pool for a :class:`~repro.runtime.parallel.ParallelEvaluator`;
    max-of-wave virtual-clock accounting under simulation). The default of 1
    preserves the paper's single-runner semantics: compilation amortized over
    ``n_parallel`` builders, executions serialized on one device.
    """

    number: int = 3  # kernel executions averaged per measurement
    repeat: int = 1  # independent measurements per config
    n_parallel: int = 8  # parallel builder width
    batch_overhead: float = 0.5  # per-batch dispatch/teardown (seconds)
    jobs: int = 1  # parallel runner width (measurement fleet)

    def __post_init__(self) -> None:
        if self.number < 1 or self.repeat < 1:
            raise TuningError("number and repeat must be >= 1")
        if self.n_parallel < 1:
            raise TuningError("n_parallel must be >= 1")
        if self.batch_overhead < 0:
            raise TuningError("batch_overhead must be >= 0")
        if self.jobs < 1:
            raise TuningError("jobs must be >= 1")


def measure_option(
    number: int = 3,
    repeat: int = 1,
    n_parallel: int = 8,
    batch_overhead: float = 0.5,
    jobs: int = 1,
) -> MeasureOption:
    """Convenience constructor mirroring ``autotvm.measure_option``."""
    return MeasureOption(number, repeat, n_parallel, batch_overhead, jobs)


class Measurer:
    """Measure batches of configs through a shared Evaluator.

    When the evaluator is a :class:`~repro.swing.SwingEvaluator`, its
    ``number``/``repeat``/``compile_parallelism`` must be configured to match
    the MeasureOption — :func:`configure_evaluator` does that — so the virtual
    clock charges build and run time with the same batch semantics.
    """

    def __init__(self, evaluator: Evaluator, option: MeasureOption | None = None) -> None:
        self.evaluator = evaluator
        self.option = option if option is not None else MeasureOption()
        self.configure_evaluator()

    def configure_evaluator(self) -> None:
        ev = self.evaluator
        if hasattr(ev, "number"):
            ev.number = self.option.number
        if hasattr(ev, "repeat"):
            ev.repeat = self.option.repeat
        if hasattr(ev, "compile_parallelism"):
            ev.compile_parallelism = self.option.n_parallel

    def measure_batch(self, configs: list[ConfigEntity]) -> list[MeasureResult]:
        if not configs:
            return []
        tel = get_telemetry()
        clock = getattr(self.evaluator, "clock", None)
        with tel.span("measure_batch", clock=clock):
            if clock is not None:
                clock.advance(self.option.batch_overhead)
            dicts = [c.to_dict() for c in configs]
            if self.option.jobs > 1:
                results = evaluate_batch(self.evaluator, dicts, jobs=self.option.jobs)
            else:
                results = [self.evaluator.evaluate(d) for d in dicts]
        if tel.enabled:
            for result in results:
                tel.emit(
                    TrialMeasured(
                        config=dict(result.config),
                        runtime=result.mean_cost,
                        compile_time=result.compile_time,
                        elapsed=result.timestamp,
                        error=result.error,
                        cache_hit=bool(result.extra.get("cache_hit")),
                        fidelity=result.fidelity,
                        backend=result.backend,
                    )
                )
        return results

    def elapsed(self) -> float:
        return self.evaluator.elapsed()
