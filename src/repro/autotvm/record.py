"""Tuning records: AutoTVM's JSON log of every measured configuration.

After tuning, Apache TVM "generates a JSON file containing all the schedules,
from which the best schedule is selected" (paper §2.1). These helpers encode
each (config, result) pair to a JSON line and back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import TuningError
from repro.runtime.measure import MeasureResult


@dataclass(frozen=True)
class TuningRecord:
    """One measured configuration."""

    task: str
    tuner: str
    config: dict[str, int]
    costs: tuple[float, ...]
    compile_time: float
    timestamp: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def mean_cost(self) -> float:
        if not self.ok or not self.costs:
            return float("inf")
        return sum(self.costs) / len(self.costs)

    @classmethod
    def from_result(cls, task: str, tuner: str, result: MeasureResult) -> "TuningRecord":
        return cls(
            task=task,
            tuner=tuner,
            config=dict(result.config),
            costs=tuple(result.costs),
            compile_time=result.compile_time,
            timestamp=result.timestamp,
            error=result.error,
        )


def encode_record(rec: TuningRecord) -> str:
    """One JSON line (TVM log-format analogue)."""
    return json.dumps(
        {
            "task": rec.task,
            "tuner": rec.tuner,
            "config": rec.config,
            "result": {
                "costs": list(rec.costs),
                "compile_time": rec.compile_time,
                "timestamp": rec.timestamp,
                "error": rec.error,
            },
            "version": 1,
        },
        sort_keys=True,
    )


def decode_record(line: str) -> TuningRecord:
    try:
        obj = json.loads(line)
        return TuningRecord(
            task=obj["task"],
            tuner=obj["tuner"],
            config={k: int(v) for k, v in obj["config"].items()},
            costs=tuple(float(c) for c in obj["result"]["costs"]),
            compile_time=float(obj["result"]["compile_time"]),
            timestamp=float(obj["result"]["timestamp"]),
            error=obj["result"]["error"],
        )
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        raise TuningError(f"malformed tuning record: {exc}") from exc


def save_records(records: list[TuningRecord], path: "str | Path") -> None:
    with open(path, "w") as fh:
        for rec in records:
            fh.write(encode_record(rec) + "\n")


def load_records(path: "str | Path") -> list[TuningRecord]:
    out: list[TuningRecord] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(decode_record(line))
    return out


def best_record(records: list[TuningRecord]) -> TuningRecord:
    ok = [r for r in records if r.ok and r.costs]
    if not ok:
        raise TuningError("no successful records")
    return min(ok, key=lambda r: r.mean_cost)
