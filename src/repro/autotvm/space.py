"""AutoTVM-style knob config spaces.

``cfg.define_knob("tile_y", [1, 2, 4, ...])`` declares a knob; the space is the
cross product of all knob candidate lists, linearly indexable in mixed-radix
order with the *first-defined knob varying fastest* (AutoTVM's order — which is
why GridSearchTuner starts in the all-smallest-tiles corner).
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence

from repro.common.errors import SpaceError


class ConfigEntity(Mapping):
    """One point of a ConfigSpace; behaves as a read-only mapping knob->value."""

    def __init__(self, space: "ConfigSpace", index: int, values: dict[str, object]) -> None:
        self.space = space
        self.index = index
        self._values = values

    def __getitem__(self, key: str) -> object:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def to_dict(self) -> dict[str, object]:
        return dict(self._values)

    def knob_indices(self) -> tuple[int, ...]:
        """Per-knob candidate indices (the GA genome / model features)."""
        return self.space.index_to_indices(self.index)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConfigEntity):
            return self.index == other.index and self.space is other.space
        return NotImplemented

    def __hash__(self) -> int:
        return hash((id(self.space), self.index))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._values.items())
        return f"ConfigEntity#{self.index}({inner})"


class ConfigSpace:
    """The tunable knob space of a task."""

    def __init__(self) -> None:
        self._knobs: dict[str, list[object]] = {}

    def define_knob(self, name: str, candidates: Sequence[object]) -> None:
        """Declare a knob with its candidate values (AutoTVM API)."""
        if name in self._knobs:
            raise SpaceError(f"knob {name!r} already defined")
        cands = list(candidates)
        if not cands:
            raise SpaceError(f"knob {name!r}: empty candidate list")
        self._knobs[name] = cands

    @property
    def knob_names(self) -> list[str]:
        return list(self._knobs)

    def knob_candidates(self, name: str) -> list[object]:
        try:
            return list(self._knobs[name])
        except KeyError:
            raise SpaceError(f"no knob named {name!r}") from None

    def gene_sizes(self) -> list[int]:
        return [len(c) for c in self._knobs.values()]

    def __len__(self) -> int:
        total = 1
        for c in self._knobs.values():
            total *= len(c)
        return total

    def index_to_indices(self, index: int) -> tuple[int, ...]:
        """Mixed-radix decode: first knob varies fastest."""
        if not 0 <= index < len(self):
            raise SpaceError(f"config index {index} out of range [0, {len(self)})")
        out: list[int] = []
        for cands in self._knobs.values():
            out.append(index % len(cands))
            index //= len(cands)
        return tuple(out)

    def indices_to_index(self, indices: Sequence[int]) -> int:
        if len(indices) != len(self._knobs):
            raise SpaceError(
                f"expected {len(self._knobs)} knob indices, got {len(indices)}"
            )
        index = 0
        stride = 1
        for i, cands in zip(indices, self._knobs.values()):
            if not 0 <= int(i) < len(cands):
                raise SpaceError(f"knob index {i} out of range [0, {len(cands)})")
            index += int(i) * stride
            stride *= len(cands)
        return index

    def get(self, index: int) -> ConfigEntity:
        """The ConfigEntity at a linear index."""
        indices = self.index_to_indices(index)
        values = {
            name: cands[i]
            for (name, cands), i in zip(self._knobs.items(), indices)
        }
        return ConfigEntity(self, index, values)

    def from_knob_indices(self, indices: Sequence[int]) -> ConfigEntity:
        return self.get(self.indices_to_index(indices))

    def __repr__(self) -> str:
        knobs = ", ".join(f"{k}[{len(v)}]" for k, v in self._knobs.items())
        return f"ConfigSpace(len={len(self)}, knobs: {knobs})"
