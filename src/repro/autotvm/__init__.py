"""AutoTVM reimplementation: knob-based config spaces and the four tuners.

Mirrors the structure of ``tvm.autotvm``: a :class:`ConfigSpace` built from
``define_knob`` calls, indexable :class:`ConfigEntity` points, a measurement
pipeline with batch semantics (parallel builder + repeated runs), tuning
records, and the four tuner strategies the paper compares —
:class:`RandomTuner`, :class:`GridSearchTuner`, :class:`GATuner`,
:class:`XGBTuner` (backed by the from-scratch GBT model in
:mod:`repro.ml.gbt`).
"""

from repro.autotvm.space import ConfigSpace, ConfigEntity
from repro.autotvm.task import Task, task_from_benchmark
from repro.autotvm.measure import MeasureOption, Measurer, measure_option
from repro.autotvm.record import TuningRecord, encode_record, decode_record, load_records, save_records
from repro.autotvm.transfer import apply_history_best, warm_start
from repro.autotvm.tuner import (
    Tuner,
    RandomTuner,
    GridSearchTuner,
    GATuner,
    XGBTuner,
    PAPER_XGB_TRIAL_CAP,
)

__all__ = [
    "ConfigSpace",
    "ConfigEntity",
    "Task",
    "task_from_benchmark",
    "MeasureOption",
    "Measurer",
    "measure_option",
    "TuningRecord",
    "encode_record",
    "decode_record",
    "load_records",
    "save_records",
    "apply_history_best",
    "warm_start",
    "Tuner",
    "RandomTuner",
    "GridSearchTuner",
    "GATuner",
    "XGBTuner",
    "PAPER_XGB_TRIAL_CAP",
]
