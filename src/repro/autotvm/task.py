"""AutoTVM tasks: a knob space plus the evaluation backend.

``task_from_benchmark`` builds the task for one of the paper's experiments: the
knobs are the same candidate lists as the ytopt ConfigSpace (the paper defines
both from the same factor lists), and evaluation goes through the shared
:class:`~repro.runtime.measure.Evaluator` interface.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.autotvm.space import ConfigEntity, ConfigSpace
from repro.kernels.registry import KernelBenchmark
from repro.runtime.measure import Evaluator, MeasureResult


class Task:
    """One tunable workload."""

    def __init__(self, name: str, space: ConfigSpace, evaluator: Evaluator) -> None:
        self.name = name
        self.space = space
        self.evaluator = evaluator

    def evaluate(self, config: "ConfigEntity | Mapping[str, int]") -> MeasureResult:
        params = config.to_dict() if isinstance(config, ConfigEntity) else dict(config)
        return self.evaluator.evaluate(params)

    def __repr__(self) -> str:
        return f"Task({self.name!r}, {self.space!r})"


def task_from_benchmark(benchmark: KernelBenchmark, evaluator: Evaluator) -> Task:
    """Create the AutoTVM task for a kernel benchmark (same knobs as Table 1)."""
    space = ConfigSpace()
    for p in benchmark.params:
        space.define_knob(p, list(benchmark.candidates[p]))
    return Task(benchmark.name, space, evaluator)
