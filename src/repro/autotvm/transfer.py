"""Transfer learning from tuning records (AutoTVM's history reuse).

Two mechanisms, mirroring ``tvm.autotvm``:

* :func:`apply_history_best` — given saved tuning records, pick the best
  configuration for a task without re-tuning (TVM's ``ApplyHistoryBest``
  context, used after "the best schedule is selected based on the tuning
  results", paper §2.1);
* :func:`warm_start` — seed a model-based tuner (XGBTuner) with prior
  records so its cost model starts trained, letting a new tuning run on the
  same task skip the cold-start phase.
"""

from __future__ import annotations

import math
from collections.abc import Iterable

from repro.autotvm.record import TuningRecord
from repro.autotvm.space import ConfigEntity
from repro.autotvm.task import Task
from repro.autotvm.tuner.xgb_tuner import XGBTuner
from repro.common.errors import TuningError


def _config_index(task: Task, config: dict[str, int]) -> int | None:
    """Locate a record's config in the task's space (None if incompatible)."""
    try:
        indices = []
        for name in task.space.knob_names:
            cands = task.space.knob_candidates(name)
            if name not in config or config[name] not in cands:
                return None
            indices.append(cands.index(config[name]))
        return task.space.indices_to_index(indices)
    except TuningError:
        return None


def apply_history_best(
    task: Task, records: Iterable[TuningRecord]
) -> tuple[ConfigEntity, float]:
    """Best recorded configuration applicable to ``task``.

    Records whose task name differs or whose knobs do not exist in the task's
    space are skipped (they came from another shape).
    """
    best_cost = math.inf
    best_entity: ConfigEntity | None = None
    for rec in records:
        if rec.task != task.name or not rec.ok or not rec.costs:
            continue
        idx = _config_index(task, rec.config)
        if idx is None:
            continue
        if rec.mean_cost < best_cost:
            best_cost = rec.mean_cost
            best_entity = task.space.get(idx)
    if best_entity is None:
        raise TuningError(
            f"no applicable successful records for task {task.name!r}"
        )
    return best_entity, best_cost


def warm_start(tuner: XGBTuner, records: Iterable[TuningRecord]) -> int:
    """Feed prior records into a model-based tuner before tuning.

    Returns the number of records absorbed. Visited configurations are marked
    so the new run never re-measures them; the cost model trains on the
    transferred observations immediately.
    """
    absorbed = 0
    annotations = []
    for rec in records:
        if rec.task != tuner.task.name:
            continue
        idx = _config_index(tuner.task, rec.config)
        if idx is None:
            continue
        tuner.visited.add(idx)
        if rec.ok and rec.costs:
            config = tuner.space.get(idx)
            tuner._X.append(tuner._features(config))
            tuner._y.append(math.log(max(rec.mean_cost, 1e-30)))
            annotations.append(config)
            if rec.mean_cost < tuner.best_cost:
                tuner.best_cost = rec.mean_cost
                tuner.best_config = config
        absorbed += 1
    if len(tuner._y) >= tuner.min_train:
        # Force an immediate model fit on the transferred data.
        from repro.ml.gbt import GradientBoostedTreesRegressor

        import numpy as np

        tuner.model = GradientBoostedTreesRegressor(
            n_estimators=50, max_depth=3, subsample=0.9,
            seed=int(tuner.rng.integers(2**31)),
        )
        tuner.model.fit(np.vstack(tuner._X), np.asarray(tuner._y))
        tuner._since_fit = 0
    return absorbed
