"""repro — reproduction of "Autotuning Apache TVM-based Scientific Applications
Using Bayesian Optimization" (SC 2023, Wu, Paramasivam, Taylor).

The package is a vertically integrated reimplementation of the paper's stack:

* :mod:`repro.te` / :mod:`repro.tir` / :mod:`repro.runtime` — a mini tensor
  compiler (the Apache TVM stand-in): tensor-expression language, schedule
  primitives, lowering to loop-nest IR, and CPU executors;
* :mod:`repro.configspace` — a ConfigSpace clone;
* :mod:`repro.ml` — random forest / gradient-boosted trees / genetic algorithm
  built from scratch on NumPy;
* :mod:`repro.ytopt` — the Bayesian-optimization autotuner (RF surrogate + LCB);
* :mod:`repro.autotvm` — AutoTVM with its four tuners;
* :mod:`repro.kernels` — PolyBench 3mm / LU / Cholesky in TE with the paper's
  tunable tiling spaces (Table 1);
* :mod:`repro.swing` — a calibrated analytical model of the Swing cluster's
  A100 GPUs used as the measurement backend (no GPU required);
* :mod:`repro.core` — the paper's proposed framework, tying it all together;
* :mod:`repro.experiments` — drivers regenerating every evaluation figure.

Quickstart::

    from repro.core import BayesianAutotuner, AutotuneConfig
    from repro.kernels import get_benchmark

    bench = get_benchmark("lu", "large")
    tuner = BayesianAutotuner.for_benchmark(bench, AutotuneConfig(max_evals=100, seed=0))
    result = tuner.run()
    print(result.best_config, result.best_runtime)
"""

__version__ = "1.0.0"

from repro.core import BayesianAutotuner, AutotuneConfig

__all__ = ["BayesianAutotuner", "AutotuneConfig", "__version__"]
