#!/usr/bin/env python
"""Tune your own kernel from a text *code mold* (the paper's workflow).

The paper parameterizes TE source by replacing literal split factors with
``#P0``-style markers. This example writes a syr2k-like kernel as a mold
string, lets :class:`Plopper` instantiate+execute it per configuration, and
tunes it with real CPU execution — exactly the Figure 3 loop, Steps 1-5.

Run:  python examples/custom_kernel_codemold.py
"""

from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.core import AutotuneConfig, BayesianAutotuner
from repro.ytopt import Plopper

MOLD = """
N, M = 64, 48

def build_schedule():
    A = te.placeholder((N, M), name="A")
    B = te.placeholder((N, M), name="B")
    k = te.reduce_axis((0, M), name="k")
    # C = A·Bᵀ + B·Aᵀ  (syr2k-shaped)
    C = te.compute(
        (N, N),
        lambda i, j: te.sum(A[i, k] * B[j, k] + B[i, k] * A[j, k], axis=k),
        name="C",
    )
    s = te.create_schedule(C.op)
    y, x = s[C].op.axis
    yo, yi = s[C].split(y, #P0)
    xo, xi = s[C].split(x, #P1)
    s[C].reorder(yo, xo, s[C].op.reduce_axis[0], yi, xi)
    s[C].vectorize(xi)
    return s, [A, B, C]
"""


def main() -> None:
    plopper = Plopper(MOLD)
    print(f"Code mold parameters detected: {list(plopper.params)}")

    space = ConfigurationSpace(name="syr2k-mold", seed=7)
    space.add_hyperparameters(
        [
            OrdinalHyperparameter("P0", [1, 2, 4, 8, 16, 32, 64]),
            OrdinalHyperparameter("P1", [1, 2, 4, 8, 16, 32, 64]),
        ]
    )

    tuner = BayesianAutotuner.for_schedule_builder(
        space,
        plopper.schedule_builder(),
        config=AutotuneConfig(max_evals=15, n_initial_points=5, seed=7),
        name="syr2k-mold",
    )
    result = tuner.run()
    print(f"\nBest: P0={result.best_config['P0']} P1={result.best_config['P1']} "
          f"-> {result.best_runtime * 1e3:.2f} ms "
          f"({result.n_evals} evals, {result.total_elapsed:.1f}s)")

    instantiated = plopper.mold.instantiate(result.best_config)
    marker_line = next(
        line for line in instantiated.splitlines() if "split(y," in line
    )
    print(f"Instantiated mold line: {marker_line.strip()}")


if __name__ == "__main__":
    main()
