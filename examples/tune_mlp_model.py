#!/usr/bin/env python
"""Future work of the paper, realized: tune a deep-learning model end to end.

The paper's conclusion points at "using the proposed autotuning framework to
tune deep learning models and operators". This example builds an MLP
classifier in the mini-Relay graph IR, runs the Figure 1 pipeline (graph
passes → FuseOps → TE subgraphs), tunes every dense subgraph's tiling with the
Bayesian-optimization framework by real execution on this CPU, and compares
the tuned model's inference latency against the untuned default.

Run:  python examples/tune_mlp_model.py
"""

import time

import numpy as np

from repro import relay
from repro.relay import build_function, fuse_ops, infer_shapes, tune_function

BATCH, IN, H1, H2, OUT = 64, 256, 128, 64, 10


def make_mlp(seed: int = 0) -> relay.Function:
    rng = np.random.default_rng(seed)

    def layer(x, units, in_features, name, activation=True):
        w = relay.const(rng.standard_normal((units, in_features)) * 0.1, f"w_{name}")
        b = relay.const(rng.standard_normal(units) * 0.1, f"b_{name}")
        out = relay.bias_add(relay.dense(x, w), b)
        return relay.relu(out) if activation else out

    x = relay.var("x", (BATCH, IN))
    h1 = layer(x, H1, IN, "fc1")
    h2 = layer(h1, H2, H1, "fc2")
    logits = layer(h2, OUT, H2, "fc3", activation=False)
    return relay.Function([x], relay.softmax(logits))


def latency(executor, xv, repeats=3) -> float:
    executor.run(x=xv)  # warm-up
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        executor.run(x=xv)
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    func = make_mlp()
    infer_shapes(func)
    print("Fusion groups (FuseOps):")
    for g in fuse_ops(func):
        mark = "tunable" if g.is_tunable else "fixed"
        print(f"  {g.name:<44} [{mark}]")

    rng = np.random.default_rng(1)
    xv = rng.standard_normal((BATCH, IN))

    default = build_function(func)
    t_default = latency(default, xv)
    print(f"\nUntuned (default 8x8 tiles): {t_default * 1e3:8.1f} ms / batch")

    print("Tuning each dense subgraph with Bayesian optimization...")
    tuned = tune_function(func, max_evals_per_group=12, seed=0)
    t_tuned = latency(tuned.executor, xv)
    print(f"Tuned:                        {t_tuned * 1e3:8.1f} ms / batch "
          f"({t_default / t_tuned:.2f}x)")

    print("\nChosen tiles per subgraph:")
    for name, result in tuned.per_group.items():
        print(f"  {name:<44} ty={result.best_config['ty']:<4} "
              f"tx={result.best_config['tx']:<4} "
              f"({result.best_runtime * 1e3:.2f} ms)")

    out = tuned.run(x=xv)
    assert np.allclose(out.sum(axis=1), 1.0), "softmax rows must sum to 1"
    print("\nOutput verified: softmax rows sum to 1.")


if __name__ == "__main__":
    main()
