#!/usr/bin/env python
"""Quickstart: autotune a real kernel on your CPU in under a minute.

Defines a small GEMM in the mini tensor-expression language, exposes its two
tiling factors as a ConfigSpace, and lets the Bayesian-optimization framework
(the paper's proposed autotuner) find good tiles by actually compiling and
timing each candidate on this machine.

Run:  python examples/quickstart.py
"""

from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.core import AutotuneConfig, BayesianAutotuner
from repro.kernels.extra import gemm_tuned

NI, NJ, NK = 96, 96, 96


def build_schedule(params):
    """ScheduleBuilder: params -> (schedule, args). Tunable tiles P0, P1."""
    return gemm_tuned(NI, NJ, NK, params)


def main() -> None:
    space = ConfigurationSpace(name="gemm-96", seed=42)
    space.add_hyperparameters(
        [
            OrdinalHyperparameter("P0", [1, 2, 4, 8, 16, 32, 48, 96]),
            OrdinalHyperparameter("P1", [1, 2, 4, 8, 16, 32, 48, 96]),
        ]
    )
    print(f"Tuning {NI}x{NJ}x{NK} GEMM over {int(space.size())} tile configurations...")

    tuner = BayesianAutotuner.for_schedule_builder(
        space,
        build_schedule,
        config=AutotuneConfig(max_evals=20, n_initial_points=6, seed=42),
        name="quickstart-gemm",
    )
    result = tuner.run()

    print(f"\nEvaluated {result.n_evals} configurations "
          f"in {result.total_elapsed:.1f}s of process time.")
    print(f"Best tiles: P0={result.best_config['P0']}, P1={result.best_config['P1']}"
          f"  ->  {result.best_runtime * 1e3:.2f} ms per run")
    print("\nTop 5 configurations:")
    ranked = sorted(
        (r for r in result.database if r.ok), key=lambda r: r.runtime
    )[:5]
    for r in ranked:
        print(f"  P0={r.config['P0']:>3} P1={r.config['P1']:>3}  "
              f"{r.runtime * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
