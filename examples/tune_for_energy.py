#!/usr/bin/env python
"""Tune for energy instead of runtime (the authors' ytopt energy line of work).

The paper optimizes runtime; its reference [9] ("ytopt: Autotuning Scientific
Applications for Energy Efficiency at Large Scales") tunes energy. The Swing
simulator includes a standard two-component GPU power model, so the same BO
framework can minimize runtime, energy, or energy-delay product — this script
tunes LU-large under all three metrics and shows how the chosen tiles shift.

Run:  python examples/tune_for_energy.py [max_evals]   (default 60)
"""

import sys

from repro.common.tabulate import format_table
from repro.common.timing import VirtualClock
from repro.core import AutotuneConfig, BayesianAutotuner
from repro.kernels import get_benchmark
from repro.swing import EnergyModel, SwingEvaluator


def main() -> None:
    max_evals = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    bench = get_benchmark("lu", "large")
    energy_model = EnergyModel()

    rows = []
    for metric in ("runtime", "energy", "edp"):
        evaluator = SwingEvaluator(
            bench.profile, clock=VirtualClock(), metric=metric
        )
        bo = BayesianAutotuner(
            bench.config_space(seed=0),
            evaluator,
            config=AutotuneConfig(max_evals=max_evals, seed=0),
            name=f"lu-large-{metric}",
        )
        result = bo.run()
        cfg = result.best_config
        runtime = energy_model.measured(bench.profile, cfg, "runtime")
        energy = energy_model.measured(bench.profile, cfg, "energy")
        power = energy_model.power(bench.profile, cfg)
        rows.append(
            [
                metric,
                f"{cfg['P0']}x{cfg['P1']}",
                f"{runtime:.3f}",
                f"{power:.0f}",
                f"{energy:.0f}",
                f"{energy * runtime:.0f}",
            ]
        )

    print(format_table(
        rows,
        headers=["objective", "tiles", "runtime (s)", "power (W)",
                 "energy (J)", "EDP (J*s)"],
        title=f"LU large (N=2000), {max_evals} evaluations per objective "
              "(simulated Swing A100)",
    ))
    print("\nEach row is the best configuration found when *that* column's "
          "objective was minimized.")


if __name__ == "__main__":
    main()
