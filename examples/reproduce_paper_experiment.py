#!/usr/bin/env python
"""Reproduce one of the paper's experiments end to end.

Runs all five tuners (ytopt + AutoTVM Random/GridSearch/GA/XGB) on a chosen
kernel and problem size against the simulated Swing/A100 backend, then prints
the two artifacts each experiment has in the paper: the "autotuning process
over time" comparison (Figures 4/6/8/10/12) and the "minimum runtimes"
comparison (Figures 5/7/9/11/13).

Run:  python examples/reproduce_paper_experiment.py [kernel] [size] [max_evals]
      e.g.  python examples/reproduce_paper_experiment.py lu large 100
Defaults: lu large 100 (the paper's Figure 4/5 protocol).
"""

import sys

from repro.experiments import (
    ascii_trajectory,
    min_runtime_table,
    process_summary_table,
    run_experiment,
)
from repro.kernels.registry import PAPER_BEST_CONFIGS


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "lu"
    size = sys.argv[2] if len(sys.argv) > 2 else "large"
    max_evals = int(sys.argv[3]) if len(sys.argv) > 3 else 100

    print(f"=== {kernel} / {size} — {max_evals} evaluations per tuner "
          "(simulated Swing A100) ===\n")
    result = run_experiment(kernel, size, max_evals=max_evals, seed=0)

    print(process_summary_table(result))
    print()
    print(min_runtime_table(result))
    paper = PAPER_BEST_CONFIGS.get((kernel, size))
    if paper:
        print(f"\nPaper reported: {paper}")

    print("\nPer-tuner evaluation scatter (runtime vs process time):\n")
    for run in result.runs.values():
        print(ascii_trajectory(run))
        print()


if __name__ == "__main__":
    main()
