#!/usr/bin/env python
"""The paper's hardest search: 3mm at the EXTRALARGE size (Figures 12-13).

The 3mm parameter space has 228,614,400 configurations (Table 1) across six
tiling factors — far beyond enumeration — which is where model-guided search
pays off. This script runs ytopt's Bayesian optimization and AutoTVM's XGB
cost-model tuner head-to-head on the simulated Swing backend and reports what
each finds, in the paper's "(E-tile, F-tile, G-tile)" tensor-size notation.

Run:  python examples/tune_3mm_swing.py [max_evals]   (default 100)
"""

import sys

from repro.experiments import format_tensor_size, min_runtime_table, run_experiment
from repro.kernels import get_benchmark
from repro.swing import SwingPerformanceModel


def main() -> None:
    max_evals = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    bench = get_benchmark("3mm", "extralarge")
    print(f"3mm extralarge: space size = {bench.space_size():,} configurations")

    model = SwingPerformanceModel()
    opt_cfg, opt_raw = model.best_over_space(bench.profile)
    scale = model.calibration_scale(bench.profile)
    print(f"Model's exact global optimum: {format_tensor_size('3mm', opt_cfg)} "
          f"at {opt_raw * scale:.2f}s (calibrated to the paper's 30.99s)\n")

    result = run_experiment(
        "3mm",
        "extralarge",
        tuners=("ytopt", "AutoTVM-XGB", "AutoTVM-Random"),
        max_evals=max_evals,
        seed=0,
    )
    print(min_runtime_table(result))

    print("\nHow close did each search get to the model's true optimum?")
    true_best = opt_raw * scale
    for name, run in sorted(result.runs.items(), key=lambda kv: kv[1].best_runtime):
        gap = (run.best_runtime / true_best - 1.0) * 100.0
        print(f"  {name:<16} {run.best_runtime:7.2f}s  (+{gap:.1f}% over optimum, "
              f"{run.n_evals} evals, {run.total_time:,.0f}s process time)")


if __name__ == "__main__":
    main()
