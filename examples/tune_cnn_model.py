#!/usr/bin/env python
"""Tune a small convolutional network end to end (LeNet-style).

The paper's future work targets convolutional models (ResNet, MobileNet).
This example builds a LeNet-flavoured CNN in the mini-Relay IR —
conv→relu→pool twice, then two dense layers — runs the Figure 1 pipeline, and
tunes every conv and dense subgraph's tiling with the BO framework on this
CPU.

Run:  python examples/tune_cnn_model.py
"""

import time

import numpy as np

from repro import relay
from repro.relay import build_function, fuse_ops, infer_shapes, tune_function

BATCH = 4


def make_cnn(seed: int = 0) -> relay.Function:
    rng = np.random.default_rng(seed)

    def weight(shape, name):
        return relay.const(rng.standard_normal(shape) * 0.1, name)

    x = relay.var("x", (BATCH, 1, 16, 16))
    # conv block 1: 1 -> 4 channels, 16x16 -> 8x8
    c1 = relay.relu(
        relay.bias_add(
            relay.conv2d(x, weight((4, 1, 3, 3), "w1"), padding=1),
            weight((4,), "b1"), axis=1,
        )
    )
    p1 = relay.max_pool2d(c1, pool_size=2)
    # conv block 2: 4 -> 8 channels, 8x8 -> 4x4
    c2 = relay.relu(
        relay.bias_add(
            relay.conv2d(p1, weight((8, 4, 3, 3), "w2"), padding=1),
            weight((8,), "b2"), axis=1,
        )
    )
    p2 = relay.max_pool2d(c2, pool_size=2)
    # classifier head
    flat = relay.flatten(p2)  # (BATCH, 8*4*4)
    h = relay.relu(
        relay.bias_add(relay.dense(flat, weight((32, 128), "w3")), weight((32,), "b3"))
    )
    logits = relay.bias_add(relay.dense(h, weight((10, 32), "w4")), weight((10,), "b4"))
    return relay.Function([x], relay.softmax(logits))


def latency(executor, xv, repeats=3) -> float:
    executor.run(x=xv)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        executor.run(x=xv)
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    func = make_cnn()
    infer_shapes(func)
    print("Fusion groups:")
    for g in fuse_ops(func):
        mark = "tunable" if g.is_tunable else "fixed"
        print(f"  {g.name:<48} [{mark}]  out {list(g.output.shape)}")

    rng = np.random.default_rng(1)
    xv = rng.standard_normal((BATCH, 1, 16, 16))

    default = build_function(func)
    t0 = latency(default, xv)
    print(f"\nUntuned: {t0 * 1e3:8.1f} ms / batch")

    print("Tuning every conv/dense subgraph...")
    tuned = tune_function(func, max_evals_per_group=8, seed=0)
    t1 = latency(tuned.executor, xv)
    print(f"Tuned:   {t1 * 1e3:8.1f} ms / batch  ({t0 / t1:.2f}x)")

    out = tuned.run(x=xv)
    assert out.shape == (BATCH, 10)
    assert np.allclose(out.sum(axis=1), 1.0)
    print(f"\nOutput verified: {out.shape} softmax rows sum to 1.")
    print("Chosen tiles:", tuned.tile_config)


if __name__ == "__main__":
    main()
