#!/usr/bin/env python
"""Run the TE-backed blocked LU and Cholesky solvers for real.

The paper's LU/Cholesky experiments tune the two tiling factors of the
trailing-matrix update. This example factorizes real matrices with
:class:`BlockedLU` / :class:`BlockedCholesky` at several tile settings,
verifies the factors against NumPy references, and times the effect of the
tiles on this CPU.

Run:  python examples/blocked_solvers.py [n]   (default 96)
"""

import sys
import time

import numpy as np

from repro.kernels import BlockedCholesky, BlockedLU
from repro.kernels.reference import (
    cholesky_reference,
    lu_reference,
    make_lu_friendly,
    make_spd,
)


def time_solver(solver, a: np.ndarray) -> tuple[np.ndarray, float]:
    solver(a)  # warm-up: compiles and caches the TE update modules
    t0 = time.perf_counter()
    out = solver(a)
    return out, time.perf_counter() - t0


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96
    tiles = [(1, 1), (4, 4), (8, 16), (16, 16), (n, n)]

    print(f"LU decomposition, N={n} (diagonally dominant matrix)")
    a = make_lu_friendly(n, seed=0)
    ref = lu_reference(a)
    for ty, tx in tiles:
        out, dt = time_solver(BlockedLU(n, {"P0": ty, "P1": tx}, panel=16), a)
        err = np.abs(out - ref).max()
        print(f"  tiles {ty:>3}x{tx:<3}  {dt * 1e3:8.1f} ms   max|err| = {err:.2e}")

    print(f"\nCholesky decomposition, N={n} (SPD matrix)")
    a = make_spd(n, seed=1)
    ref = cholesky_reference(a)
    for ty, tx in tiles:
        out, dt = time_solver(BlockedCholesky(n, {"P0": ty, "P1": tx}, panel=16), a)
        err = np.abs(out - ref).max()
        print(f"  tiles {ty:>3}x{tx:<3}  {dt * 1e3:8.1f} ms   max|err| = {err:.2e}")

    print("\nResidual check (LU): ||L·U - A|| / ||A||")
    lu = BlockedLU(n, {"P0": 8, "P1": 8}, panel=16)(a := make_lu_friendly(n, 2))
    lower = np.tril(lu, -1) + np.eye(n)
    upper = np.triu(lu)
    rel = np.linalg.norm(lower @ upper - a) / np.linalg.norm(a)
    print(f"  {rel:.2e}")


if __name__ == "__main__":
    main()
