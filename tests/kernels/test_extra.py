"""Tests for the extension kernels (gemm, 2mm, atax, bicg, mvt, syrk)."""

import numpy as np
import pytest

from repro.common.errors import SpaceError
from repro.kernels import (
    atax_tuned,
    bicg_tuned,
    doitgen_tuned,
    gemm_tuned,
    gesummv_tuned,
    mvt_tuned,
    syr2k_tuned,
    syrk_tuned,
    twomm_tuned,
)
from repro.kernels.reference import (
    atax_reference,
    bicg_reference,
    doitgen_reference,
    gemm_reference,
    gesummv_reference,
    mvt_reference,
    syr2k_reference,
    syrk_reference,
    twomm_reference,
)
from repro.runtime import build


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.mark.parametrize("tiles", [(1, 1), (2, 5), (4, 4), (12, 10)])
class TestGemm:
    def test_matches_reference(self, rng, tiles):
        s, args = gemm_tuned(12, 10, 8, {"P0": tiles[0], "P1": tiles[1]})
        mod = build(s, args)
        a, b, c = rng.random((12, 8)), rng.random((8, 10)), rng.random((12, 10))
        out = np.zeros((12, 10))
        mod(a, b, c, out)
        np.testing.assert_allclose(
            out, gemm_reference(1.5, 1.2, c, a, b), rtol=1e-12
        )


class TestTwomm:
    def test_matches_reference(self, rng):
        s, args = twomm_tuned(6, 8, 10, 12, {"P0": 3, "P1": 4, "P2": 2, "P3": 6})
        mod = build(s, args)
        a, b = rng.random((6, 10)), rng.random((10, 8))
        c, d = rng.random((8, 12)), rng.random((6, 12))
        out = np.zeros((6, 12))
        mod(a, b, c, d, out)
        np.testing.assert_allclose(
            out, twomm_reference(1.5, 1.2, a, b, c, d), rtol=1e-12
        )

    def test_missing_params_rejected(self):
        with pytest.raises(SpaceError):
            twomm_tuned(4, 4, 4, 4, {"P0": 2})


class TestVectorKernels:
    def test_atax(self, rng):
        s, args = atax_tuned(9, 7, {"P0": 3, "P1": 7})
        mod = build(s, args)
        a, x = rng.random((9, 7)), rng.random(7)
        y = np.zeros(7)
        mod(a, x, y)
        np.testing.assert_allclose(y, atax_reference(a, x), rtol=1e-12)

    def test_bicg_two_outputs(self, rng):
        s, args = bicg_tuned(7, 9, {"P0": 1, "P1": 3})
        mod = build(s, args)
        a, p, r = rng.random((9, 7)), rng.random(7), rng.random(9)
        s_out, q_out = np.zeros(7), np.zeros(9)
        mod(a, p, r, s_out, q_out)
        ref_s, ref_q = bicg_reference(a, p, r)
        np.testing.assert_allclose(s_out, ref_s, rtol=1e-12)
        np.testing.assert_allclose(q_out, ref_q, rtol=1e-12)

    def test_mvt(self, rng):
        s, args = mvt_tuned(8, {"P0": 4, "P1": 2})
        mod = build(s, args)
        a = rng.random((8, 8))
        vecs = [rng.random(8) for _ in range(4)]
        o1, o2 = np.zeros(8), np.zeros(8)
        mod(a, *vecs, o1, o2)
        r1, r2 = mvt_reference(a, *vecs)
        np.testing.assert_allclose(o1, r1, rtol=1e-12)
        np.testing.assert_allclose(o2, r2, rtol=1e-12)

    def test_syrk(self, rng):
        s, args = syrk_tuned(8, 6, {"P0": 4, "P1": 8})
        mod = build(s, args)
        a, c = rng.random((8, 6)), rng.random((8, 8))
        out = np.zeros((8, 8))
        mod(a, c, out)
        np.testing.assert_allclose(
            out, syrk_reference(1.5, 1.2, c, a), rtol=1e-12
        )

    def test_syr2k(self, rng):
        s, args = syr2k_tuned(8, 6, {"P0": 2, "P1": 4})
        mod = build(s, args)
        a, b, c = rng.random((8, 6)), rng.random((8, 6)), rng.random((8, 8))
        out = np.zeros((8, 8))
        mod(a, b, c, out)
        np.testing.assert_allclose(
            out, syr2k_reference(1.5, 1.2, c, a, b), rtol=1e-12
        )

    def test_gesummv(self, rng):
        s, args = gesummv_tuned(9, {"P0": 3, "P1": 9})
        mod = build(s, args)
        a, b, x = rng.random((9, 9)), rng.random((9, 9)), rng.random(9)
        y = np.zeros(9)
        mod(a, b, x, y)
        np.testing.assert_allclose(
            y, gesummv_reference(1.5, 1.2, a, b, x), rtol=1e-12
        )

    def test_doitgen_3d_output(self, rng):
        s, args = doitgen_tuned(3, 6, 8, {"P0": 2, "P1": 4})
        mod = build(s, args)
        a, c4 = rng.random((3, 6, 8)), rng.random((8, 8))
        out = np.zeros((3, 6, 8))
        mod(a, c4, out)
        np.testing.assert_allclose(out, doitgen_reference(a, c4), rtol=1e-12)

    def test_doitgen_imperfect_tiles(self, rng):
        s, args = doitgen_tuned(2, 5, 6, {"P0": 3, "P1": 4}, vectorize_inner=False)
        mod = build(s, args)
        a, c4 = rng.random((2, 5, 6)), rng.random((6, 6))
        out = np.zeros((2, 5, 6))
        mod(a, c4, out)
        np.testing.assert_allclose(out, doitgen_reference(a, c4), rtol=1e-12)

    def test_trmm_masked_reduction(self, rng):
        from repro.kernels import trmm_tuned
        from repro.kernels.reference import trmm_reference

        s, args = trmm_tuned(8, 6, {"P0": 2, "P1": 3})
        mod = build(s, args)
        a, b = rng.random((8, 8)), rng.random((8, 6))
        out = np.zeros((8, 6))
        mod(a, b, out)
        np.testing.assert_allclose(out, trmm_reference(1.5, a, b), rtol=1e-12)

    def test_trmm_interp_and_codegen_agree(self, rng):
        from repro.kernels import trmm_tuned

        s, args = trmm_tuned(6, 5, {"P0": 3, "P1": 5})
        a, b = rng.random((6, 6)), rng.random((6, 5))
        out_cg = np.zeros((6, 5))
        build(s, args, target="llvm")(a, b, out_cg)
        s2, args2 = trmm_tuned(6, 5, {"P0": 3, "P1": 5})
        out_in = np.zeros((6, 5))
        build(s2, args2, target="interp")(a, b, out_in)
        np.testing.assert_allclose(out_cg, out_in, rtol=1e-12)

    def test_oversized_tiles_clamped(self, rng):
        s, args = atax_tuned(5, 4, {"P0": 100, "P1": 100})
        mod = build(s, args)
        a, x = rng.random((5, 4)), rng.random(4)
        y = np.zeros(4)
        mod(a, x, y)
        np.testing.assert_allclose(y, atax_reference(a, x), rtol=1e-12)
