"""Tests for the covariance/correlation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SpaceError
from repro.kernels.datamining import (
    correlation_reference,
    correlation_tuned,
    covariance_reference,
    covariance_tuned,
)
from repro.runtime import build


@pytest.fixture
def data():
    return np.random.default_rng(0).standard_normal((20, 8))


class TestCovariance:
    def test_reference_matches_numpy(self, data):
        np.testing.assert_allclose(
            covariance_reference(data), np.cov(data, rowvar=False), rtol=1e-12
        )

    def test_te_matches_reference(self, data):
        s, args = covariance_tuned(20, 8, {"P0": 2, "P1": 4})
        mod = build(s, args)
        out = np.zeros((8, 8))
        mod(data, out)
        np.testing.assert_allclose(out, covariance_reference(data), rtol=1e-10)

    def test_symmetry(self, data):
        s, args = covariance_tuned(20, 8, {"P0": 4, "P1": 2})
        mod = build(s, args)
        out = np.zeros((8, 8))
        mod(data, out)
        np.testing.assert_allclose(out, out.T, rtol=1e-10)

    def test_missing_params_rejected(self):
        with pytest.raises(SpaceError):
            covariance_tuned(10, 4, {"P0": 2})

    @settings(max_examples=8, deadline=None)
    @given(
        ty=st.sampled_from([1, 2, 4, 8]),
        tx=st.sampled_from([1, 2, 8]),
        seed=st.integers(0, 100),
    )
    def test_property_tiles_do_not_change_result(self, ty, tx, seed):
        d = np.random.default_rng(seed).standard_normal((12, 8))
        s, args = covariance_tuned(12, 8, {"P0": ty, "P1": tx})
        mod = build(s, args)
        out = np.zeros((8, 8))
        mod(d, out)
        np.testing.assert_allclose(out, covariance_reference(d), rtol=1e-10)


class TestCorrelation:
    def test_te_matches_reference(self, data):
        s, args = correlation_tuned(20, 8, {"P0": 2, "P1": 4})
        mod = build(s, args)
        out = np.zeros((8, 8))
        mod(data, out)
        np.testing.assert_allclose(out, correlation_reference(data), rtol=1e-10)

    def test_unit_diagonal(self, data):
        s, args = correlation_tuned(20, 8, {"P0": 4, "P1": 4})
        mod = build(s, args)
        out = np.zeros((8, 8))
        mod(data, out)
        np.testing.assert_allclose(np.diag(out), 1.0, rtol=1e-10)

    def test_values_in_unit_range(self, data):
        s, args = correlation_tuned(20, 8, {"P0": 1, "P1": 8})
        mod = build(s, args)
        out = np.zeros((8, 8))
        mod(data, out)
        assert np.all(np.abs(out) <= 1.0 + 1e-9)

    def test_constant_column_floored_std(self):
        # A constant column has zero stddev; the eps floor keeps the kernel
        # finite (PolyBench's behaviour).
        d = np.random.default_rng(1).standard_normal((16, 4))
        d[:, 2] = 5.0
        s, args = correlation_tuned(16, 4, {"P0": 2, "P1": 2})
        mod = build(s, args)
        out = np.zeros((4, 4))
        mod(d, out)
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out, correlation_reference(d), rtol=1e-10)

    def test_tunable_with_bo(self):
        # End-to-end: the covariance kernel tunes under the BO framework.
        from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
        from repro.core import AutotuneConfig, BayesianAutotuner

        space = ConfigurationSpace(seed=0)
        space.add_hyperparameters(
            [
                OrdinalHyperparameter("P0", [1, 2, 4, 8, 16]),
                OrdinalHyperparameter("P1", [1, 2, 4, 8, 16]),
            ]
        )
        tuner = BayesianAutotuner.for_schedule_builder(
            space,
            lambda p: covariance_tuned(32, 16, p),
            config=AutotuneConfig(max_evals=6, n_initial_points=3, seed=0),
        )
        result = tuner.run()
        assert result.best_runtime > 0
