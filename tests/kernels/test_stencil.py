"""Tests for the Jacobi-2D stencil kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SpaceError
from repro.kernels.stencil import jacobi2d_reference, jacobi2d_tuned
from repro.runtime import build


@pytest.fixture
def grid():
    return np.random.default_rng(0).random((12, 12))


class TestJacobi2DReference:
    def test_boundary_unchanged(self, grid):
        out = jacobi2d_reference(grid, 3)
        np.testing.assert_array_equal(out[0, :], grid[0, :])
        np.testing.assert_array_equal(out[-1, :], grid[-1, :])
        np.testing.assert_array_equal(out[:, 0], grid[:, 0])
        np.testing.assert_array_equal(out[:, -1], grid[:, -1])

    def test_uniform_grid_fixed_point(self):
        a = np.full((8, 8), 3.0)
        np.testing.assert_allclose(jacobi2d_reference(a, 5), a)

    def test_smoothing_reduces_variance(self, grid):
        out = jacobi2d_reference(grid, 10)
        assert out[1:-1, 1:-1].var() < grid[1:-1, 1:-1].var()


class TestJacobi2DTE:
    def test_matches_reference_one_step(self, grid):
        s, args = jacobi2d_tuned(12, 1, {"P0": 4, "P1": 6})
        mod = build(s, args)
        out = np.zeros((12, 12))
        mod(grid, out)
        np.testing.assert_allclose(out, jacobi2d_reference(grid, 1), rtol=1e-12)

    def test_matches_reference_multi_step(self, grid):
        s, args = jacobi2d_tuned(12, 4, {"P0": 3, "P1": 4})
        mod = build(s, args)
        out = np.zeros((12, 12))
        mod(grid, out)
        np.testing.assert_allclose(out, jacobi2d_reference(grid, 4), rtol=1e-12)

    def test_stage_count_matches_tsteps(self):
        s, _ = jacobi2d_tuned(8, 3, {"P0": 2, "P1": 2})
        assert len(s.stages) == 3

    def test_validation(self):
        with pytest.raises(SpaceError):
            jacobi2d_tuned(8, 2, {"P0": 2})
        with pytest.raises(SpaceError):
            jacobi2d_tuned(2, 1, {"P0": 1, "P1": 1})
        with pytest.raises(SpaceError):
            jacobi2d_tuned(8, 0, {"P0": 1, "P1": 1})

    @settings(max_examples=8, deadline=None)
    @given(
        ty=st.sampled_from([1, 2, 4, 12]),
        tx=st.sampled_from([1, 3, 6, 12]),
        tsteps=st.integers(1, 3),
        seed=st.integers(0, 50),
    )
    def test_property_tiles_do_not_change_result(self, ty, tx, tsteps, seed):
        a = np.random.default_rng(seed).random((12, 12))
        s, args = jacobi2d_tuned(12, tsteps, {"P0": ty, "P1": tx})
        mod = build(s, args)
        out = np.zeros((12, 12))
        mod(a, out)
        np.testing.assert_allclose(
            out, jacobi2d_reference(a, tsteps), rtol=1e-12
        )

    def test_tunable_with_bo(self):
        from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
        from repro.core import AutotuneConfig, BayesianAutotuner

        space = ConfigurationSpace(seed=0)
        space.add_hyperparameters(
            [
                OrdinalHyperparameter("P0", [1, 2, 4, 8, 16]),
                OrdinalHyperparameter("P1", [1, 2, 4, 8, 16]),
            ]
        )
        tuner = BayesianAutotuner.for_schedule_builder(
            space,
            lambda p: jacobi2d_tuned(16, 2, p),
            config=AutotuneConfig(max_evals=6, n_initial_points=3, seed=0),
        )
        result = tuner.run()
        assert result.best_runtime > 0
