"""Tests for the 3mm TE kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SpaceError
from repro.kernels import problem_size, threemm_basic, threemm_tuned
from repro.kernels.problem_sizes import ThreeMMSize
from repro.kernels.reference import threemm_reference
from repro.runtime import build

MINI = problem_size("3mm", "mini")


def _run(params, size=MINI, dtype="float64"):
    sched, args = threemm_tuned(size, params, dtype=dtype)
    mod = build(sched, args)
    rng = np.random.default_rng(0)
    a = rng.random((size.n, size.l))
    b = rng.random((size.l, size.m))
    c = rng.random((size.m, size.o))
    d = rng.random((size.o, size.p))
    g = np.zeros((size.n, size.p))
    mod(a, b, c, d, g)
    return g, threemm_reference(a, b, c, d)


class TestThreemm:
    def test_basic_matches_reference(self):
        sched, args = threemm_basic(MINI)
        assert len(args) == 5  # A, B, C, D, G (paper signature)
        got, ref = _run(dict(zip(("P0", "P1", "P2", "P3", "P4", "P5"), [8] * 6)))
        np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_mixed_tiles(self):
        got, ref = _run({"P0": 4, "P1": 5, "P2": 2, "P3": 6, "P4": 16, "P5": 3})
        np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_all_ones(self):
        got, ref = _run({p: 1 for p in ("P0", "P1", "P2", "P3", "P4", "P5")})
        np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_full_extent_tiles(self):
        got, ref = _run(
            {"P0": MINI.n, "P1": MINI.m, "P2": MINI.m, "P3": MINI.p, "P4": MINI.n, "P5": MINI.p}
        )
        np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_oversized_tiles_clamped(self):
        got, ref = _run({p: 9999 for p in ("P0", "P1", "P2", "P3", "P4", "P5")})
        np.testing.assert_allclose(got, ref, rtol=1e-10)

    def test_missing_param_rejected(self):
        with pytest.raises(SpaceError):
            threemm_tuned(MINI, {"P0": 4})

    def test_stage_names(self):
        sched, _ = threemm_basic(MINI)
        assert [st.op.name for st in sched.stages] == ["E", "F", "G"]

    @settings(max_examples=10, deadline=None)
    @given(
        p=st.tuples(*[st.sampled_from([1, 2, 4, 8]) for _ in range(6)]),
    )
    def test_property_any_tile_combo_correct(self, p):
        params = dict(zip(("P0", "P1", "P2", "P3", "P4", "P5"), p))
        got, ref = _run(params)
        np.testing.assert_allclose(got, ref, rtol=1e-9)
