"""Tests for the GPU-binding schedule recipe."""

import numpy as np
import pytest

import repro.te as te
from repro.common.errors import ScheduleError
from repro.kernels.schedules import apply_gpu_tiling
from repro.runtime import build
from repro.tir import count_loops, lower, simplify_func
from tests.conftest import make_matmul


class TestApplyGpuTiling:
    def test_binds_block_and_thread_axes(self):
        A, B, C = make_matmul(16, 16, 8)
        s = te.create_schedule(C.op)
        apply_gpu_tiling(s[C], 4, 8)
        tags = sorted(t.thread_tag for t in s[C].binds.values())
        assert tags == ["blockIdx.x", "blockIdx.y", "threadIdx.x", "threadIdx.y"]

    def test_lowered_kinds(self):
        A, B, C = make_matmul(16, 16, 8)
        s = te.create_schedule(C.op)
        apply_gpu_tiling(s[C], 4, 8)
        func = simplify_func(lower(s, [A, B, C]))
        counts = count_loops(func.body)
        # 4 bound data-par loops in the update nest + 2 in the init nest, and
        # the serial k loop.
        assert counts["thread_binding"] >= 4
        assert counts["serial"] >= 1

    def test_executes_correctly_on_cpu(self, rng):
        # Bound loops run serially on the CPU executors: same results.
        A, B, C = make_matmul(16, 12, 8)
        s = te.create_schedule(C.op)
        apply_gpu_tiling(s[C], 4, 6)
        mod = build(s, [A, B, C])
        a = rng.random((16, 8)).astype("float32")
        b = rng.random((8, 12)).astype("float32")
        c = np.zeros((16, 12), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_oversized_tiles_clamped(self, rng):
        A, B, C = make_matmul(8, 8, 4)
        s = te.create_schedule(C.op)
        apply_gpu_tiling(s[C], 100, 100)
        mod = build(s, [A, B, C])
        a = rng.random((8, 4)).astype("float32")
        b = rng.random((4, 8)).astype("float32")
        c = np.zeros((8, 8), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_wrong_stage_shape_rejected(self):
        A = te.placeholder((8,), name="A")
        B = te.compute((8,), lambda i: A[i] * 2.0, name="B")
        s = te.create_schedule(B.op)
        with pytest.raises(ScheduleError):
            apply_gpu_tiling(s[B], 2, 2)
