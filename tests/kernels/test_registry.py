"""Tests for the kernel benchmark registry."""

import pytest

from repro.common.errors import RegistryError, ReproError
from repro.kernels import get_benchmark, list_benchmarks
from repro.kernels.registry import PAPER_BEST_RUNTIMES


class TestRegistry:
    def test_all_paper_benchmarks_present(self):
        assert set(list_benchmarks()) == {
            ("3mm", "large"),
            ("3mm", "extralarge"),
            ("cholesky", "large"),
            ("cholesky", "extralarge"),
            ("lu", "large"),
            ("lu", "extralarge"),
        }

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ReproError):
            get_benchmark("stencil", "large")

    def test_unknown_kernel_raises_typed_registry_error(self):
        # Not a bare KeyError/ReproError: callers get the typed RegistryError
        # carrying what was asked for and what exists.
        with pytest.raises(RegistryError) as exc:
            get_benchmark("stencil", "large")
        assert exc.value.requested == "stencil"
        assert "3mm" in exc.value.available
        assert "stencil" in str(exc.value)

    def test_unknown_size_raises_typed_registry_error(self):
        with pytest.raises(RegistryError) as exc:
            get_benchmark("3mm", "gigantic")
        assert exc.value.requested == "gigantic"
        assert "large" in exc.value.available

    def test_unknown_size_for_delegated_plugin_kernel(self):
        with pytest.raises(RegistryError) as exc:
            get_benchmark("gemm", "gigantic")
        assert exc.value.requested == "gigantic"
        assert "mini" in exc.value.available

    def test_problem_size_unknown_raises_typed_registry_error(self):
        from repro.kernels import problem_size

        with pytest.raises(RegistryError):
            problem_size("nosuch", "mini")
        with pytest.raises(RegistryError):
            problem_size("gemm", "nosuch")

    def test_space_size_matches_profile_candidates(self):
        b = get_benchmark("3mm", "large")
        assert b.space_size() == 74_649_600
        assert b.profile.param_candidates == b.candidates

    def test_gene_sizes(self):
        assert get_benchmark("lu", "large").gene_sizes() == [20, 20]
        assert len(get_benchmark("3mm", "extralarge").gene_sizes()) == 6

    def test_config_from_indices(self):
        b = get_benchmark("lu", "large")
        cfg = b.config_from_indices([0, 19])
        assert cfg == {"P0": 1, "P1": 2000}

    def test_config_from_indices_validation(self):
        b = get_benchmark("lu", "large")
        with pytest.raises(ReproError):
            b.config_from_indices([0])
        with pytest.raises(ReproError):
            b.config_from_indices([0, 99])

    def test_profiles_carry_paper_best(self):
        for (kernel, size), runtime in PAPER_BEST_RUNTIMES.items():
            assert get_benchmark(kernel, size).profile.paper_best == runtime

    def test_solver_flop_scales(self):
        lu = get_benchmark("lu", "large").profile.stages[0]
        ch = get_benchmark("cholesky", "large").profile.stages[0]
        assert lu.flops == pytest.approx(2 / 3 * 2000**3)
        assert ch.flops == pytest.approx(1 / 3 * 2000**3)

    def test_3mm_stage_dims(self):
        stages = get_benchmark("3mm", "extralarge").profile.stages
        dims = {s.name: (s.m, s.n, s.k) for s in stages}
        assert dims == {
            "E": (1600, 2000, 1800),
            "F": (2000, 2400, 2200),
            "G": (1600, 2400, 2000),
        }

    def test_schedule_builder_runs_at_small_size(self):
        import numpy as np

        from repro.runtime import build

        b = get_benchmark("3mm", "large")
        # The builder itself must work; execute only a mini-size clone.
        from repro.kernels import problem_size, threemm_tuned

        size = problem_size("3mm", "mini")
        params = {p: 2 for p in b.params}
        sched, args = threemm_tuned(size, params)
        mod = build(sched, args)
        bufs = [np.zeros(t.shape, dtype=t.dtype) for t in args]
        mod(*bufs)

    def test_runner_factory_for_solvers(self):
        assert get_benchmark("lu", "large").runner_factory is not None
        assert get_benchmark("3mm", "large").runner_factory is None
