"""Tests for the tuning parameter spaces — Table 1 of the paper."""

import pytest

from repro.common.divisors import divisors
from repro.common.errors import SpaceError
from repro.kernels import (
    TABLE1_SPACE_SIZES,
    build_config_space,
    param_candidates,
    problem_size,
    space_size,
)


class TestTable1:
    @pytest.mark.parametrize(("kernel", "size"), sorted(TABLE1_SPACE_SIZES))
    def test_space_sizes_match_paper(self, kernel, size):
        assert space_size(kernel, size) == TABLE1_SPACE_SIZES[(kernel, size)]

    def test_3mm_extralarge_exact(self):
        assert space_size("3mm", "extralarge") == 228_614_400

    def test_3mm_large_exact(self):
        assert space_size("3mm", "large") == 74_649_600

    def test_solver_spaces_are_squares(self):
        assert space_size("lu", "large") == 20**2
        assert space_size("lu", "extralarge") == 24**2


class TestCandidates:
    def test_candidates_are_divisors_of_split_axes(self):
        size = problem_size("3mm", "extralarge")
        cands = param_candidates("3mm", "extralarge")
        assert cands["P0"] == tuple(divisors(size.n))  # E rows (N=1600)
        assert cands["P1"] == tuple(divisors(size.m))  # E cols (M=2000)
        assert cands["P2"] == tuple(divisors(size.m))  # F rows (M=2000)
        assert cands["P3"] == tuple(divisors(size.p))  # F cols (P=2400)
        assert cands["P4"] == tuple(divisors(size.n))  # G rows (N=1600)
        assert cands["P5"] == tuple(divisors(size.p))  # G cols (P=2400)

    def test_paper_candidate_counts(self):
        # The multiset of per-parameter counts matches the paper's printed
        # ConfigSpace (20, 21, 36, 20, 36, 21) regardless of axis binding.
        counts = sorted(len(c) for c in param_candidates("3mm", "extralarge").values())
        assert counts == sorted([20, 21, 36, 20, 36, 21])

    def test_solver_candidates(self):
        cands = param_candidates("lu", "large")
        assert cands["P0"] == cands["P1"] == tuple(divisors(2000))

    def test_unknown_kernel_rejected(self):
        from repro.common.errors import ReproError

        with pytest.raises(ReproError):
            param_candidates("fft", "large")


class TestConfigSpaceConstruction:
    def test_builds_ordinals(self):
        cs = build_config_space("cholesky", "large", seed=0)
        assert cs.get_hyperparameter_names() == ["P0", "P1"]
        assert cs.size() == 400.0

    def test_3mm_space(self):
        cs = build_config_space("3mm", "extralarge", seed=0)
        assert len(cs) == 6
        assert int(cs.size()) == 228_614_400

    def test_sampled_configs_are_valid_tiles(self):
        cs = build_config_space("lu", "extralarge", seed=1)
        for cfg in cs.sample_configuration(20):
            assert 4000 % cfg["P0"] == 0
            assert 4000 % cfg["P1"] == 0
