"""Tests for the shipped pre-tuned configurations."""

import pytest

from repro.common.errors import TuningError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark, list_benchmarks
from repro.kernels.pretuned import pretuned_config, validate_pretuned
from repro.swing import SwingEvaluator


class TestPretuned:
    @pytest.mark.parametrize(("kernel", "size"), sorted(list_benchmarks()))
    def test_every_benchmark_has_valid_pretuned(self, kernel, size):
        bench = get_benchmark(kernel, size)
        cfg = validate_pretuned(bench)
        assert set(cfg) == set(bench.params)

    @pytest.mark.parametrize(("kernel", "size"), sorted(list_benchmarks()))
    def test_pretuned_within_2x_of_model_optimum(self, kernel, size):
        bench = get_benchmark(kernel, size)
        ev = SwingEvaluator(bench.profile, clock=VirtualClock())
        cost = ev.evaluate(pretuned_config(kernel, size)).mean_cost
        _, raw_best = ev.model.best_over_space(bench.profile)
        best = raw_best * ev.model.calibration_scale(bench.profile)
        assert cost <= 2.0 * best

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(TuningError):
            pretuned_config("fft", "large")

    def test_pretuned_beats_default_corner(self):
        bench = get_benchmark("lu", "large")
        ev = SwingEvaluator(bench.profile, clock=VirtualClock())
        tuned = ev.evaluate(pretuned_config("lu", "large")).mean_cost
        corner = ev.evaluate({"P0": 1, "P1": 1}).mean_cost
        assert tuned < corner / 50
