"""Tests for the NumPy reference kernels (the ground truth itself)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.kernels.reference import (
    atax_reference,
    bicg_reference,
    cholesky_reference,
    gemm_reference,
    lu_reference,
    lu_split,
    make_lu_friendly,
    make_spd,
    mvt_reference,
    syrk_reference,
    threemm_reference,
    twomm_reference,
)


class TestLUReference:
    def test_factorization_identity(self):
        a = make_lu_friendly(12, seed=0)
        lower, upper = lu_split(lu_reference(a))
        np.testing.assert_allclose(lower @ upper, a, rtol=1e-10)

    def test_unit_diagonal_l(self):
        a = make_lu_friendly(8, seed=1)
        lower, _ = lu_split(lu_reference(a))
        np.testing.assert_allclose(np.diag(lower), 1.0)

    def test_zero_pivot_detected(self):
        with pytest.raises(ReproError):
            lu_reference(np.array([[0.0, 1.0], [1.0, 0.0]]))

    def test_non_square_rejected(self):
        with pytest.raises(ReproError):
            lu_reference(np.zeros((3, 4)))

    def test_identity_factors_to_identity(self):
        np.testing.assert_allclose(lu_reference(np.eye(5)), np.eye(5))

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 20), seed=st.integers(0, 500))
    def test_property_reconstruction(self, n, seed):
        a = make_lu_friendly(n, seed=seed)
        lower, upper = lu_split(lu_reference(a))
        np.testing.assert_allclose(lower @ upper, a, rtol=1e-8, atol=1e-10)


class TestCholeskyReference:
    def test_factorization_identity(self):
        a = make_spd(10, seed=0)
        low = cholesky_reference(a)
        np.testing.assert_allclose(low @ low.T, a, rtol=1e-10)

    def test_matches_numpy(self):
        a = make_spd(9, seed=2)
        np.testing.assert_allclose(
            cholesky_reference(a), np.linalg.cholesky(a), rtol=1e-10
        )

    def test_lower_triangular(self):
        low = cholesky_reference(make_spd(7, seed=1))
        assert np.allclose(np.triu(low, 1), 0.0)

    def test_not_spd_rejected(self):
        with pytest.raises(ReproError):
            cholesky_reference(np.array([[1.0, 2.0], [2.0, 1.0]]))  # indefinite

    @settings(max_examples=15, deadline=None)
    @given(n=st.integers(2, 20), seed=st.integers(0, 500))
    def test_property_reconstruction(self, n, seed):
        a = make_spd(n, seed=seed)
        low = cholesky_reference(a)
        np.testing.assert_allclose(low @ low.T, a, rtol=1e-8, atol=1e-10)


class TestOtherReferences:
    def test_3mm(self):
        rng = np.random.default_rng(0)
        a, b = rng.random((4, 5)), rng.random((5, 6))
        c, d = rng.random((6, 7)), rng.random((7, 8))
        np.testing.assert_allclose(threemm_reference(a, b, c, d), (a @ b) @ (c @ d))

    def test_3mm_shape_mismatch(self):
        with pytest.raises(ReproError):
            threemm_reference(
                np.zeros((2, 3)), np.zeros((4, 5)), np.zeros((5, 6)), np.zeros((6, 7))
            )

    def test_gemm(self):
        rng = np.random.default_rng(1)
        a, b, c = rng.random((3, 4)), rng.random((4, 5)), rng.random((3, 5))
        np.testing.assert_allclose(
            gemm_reference(2.0, 0.5, c, a, b), 2 * a @ b + 0.5 * c
        )

    def test_2mm(self):
        rng = np.random.default_rng(2)
        a, b = rng.random((3, 4)), rng.random((4, 5))
        c, d = rng.random((5, 6)), rng.random((3, 6))
        np.testing.assert_allclose(
            twomm_reference(2.0, 3.0, a, b, c, d), 2 * (a @ b) @ c + 3 * d
        )

    def test_atax_bicg_mvt_syrk(self):
        rng = np.random.default_rng(3)
        a = rng.random((5, 4))
        x = rng.random(4)
        np.testing.assert_allclose(atax_reference(a, x), a.T @ (a @ x))
        p, r = rng.random(4), rng.random(5)
        s, q = bicg_reference(a, p, r)
        np.testing.assert_allclose(s, a.T @ r)
        np.testing.assert_allclose(q, a @ p)
        sq = rng.random((4, 4))
        x1, x2, y1, y2 = (rng.random(4) for _ in range(4))
        o1, o2 = mvt_reference(sq, x1, x2, y1, y2)
        np.testing.assert_allclose(o1, x1 + sq @ y1)
        np.testing.assert_allclose(o2, x2 + sq.T @ y2)
        c = rng.random((5, 5))
        np.testing.assert_allclose(
            syrk_reference(2.0, 0.1, c, a), 2 * a @ a.T + 0.1 * c
        )

    def test_generators_are_usable(self):
        assert np.all(np.linalg.eigvalsh(make_spd(6)) > 0)
        lu_reference(make_lu_friendly(6))  # must not raise
