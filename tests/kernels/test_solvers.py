"""Tests for the blocked LU/Cholesky drivers and their TE updates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ExecutionError, SpaceError
from repro.kernels import (
    BlockedCholesky,
    BlockedLU,
    cholesky_trailing_update_tuned,
    lu_trailing_update_tuned,
)
from repro.kernels.reference import (
    cholesky_reference,
    lu_reference,
    make_lu_friendly,
    make_spd,
)
from repro.runtime import build


class TestTrailingUpdates:
    def test_lu_update_matches_numpy(self, rng):
        sched, args = lu_trailing_update_tuned(10, 12, 4, {"P0": 5, "P1": 4})
        mod = build(sched, args)
        l21 = rng.random((10, 4))
        u12 = rng.random((4, 12))
        trail = rng.random((10, 12))
        new = np.zeros((10, 12))
        mod(l21, u12, trail, new)
        np.testing.assert_allclose(new, trail - l21 @ u12, rtol=1e-12)

    def test_cholesky_update_matches_numpy(self, rng):
        sched, args = cholesky_trailing_update_tuned(9, 3, {"P0": 3, "P1": 9})
        mod = build(sched, args)
        l21 = rng.random((9, 3))
        trail = rng.random((9, 9))
        new = np.zeros((9, 9))
        mod(l21, trail, new)
        np.testing.assert_allclose(new, trail - l21 @ l21.T, rtol=1e-12)

    def test_missing_params_rejected(self):
        with pytest.raises(SpaceError):
            lu_trailing_update_tuned(4, 4, 2, {"P0": 2})
        with pytest.raises(SpaceError):
            cholesky_trailing_update_tuned(4, 2, {"P1": 2})


class TestBlockedLU:
    def test_matches_reference(self):
        a = make_lu_friendly(24, seed=0)
        out = BlockedLU(24, {"P0": 4, "P1": 6}, panel=8)(a)
        np.testing.assert_allclose(out, lu_reference(a), rtol=1e-9, atol=1e-11)

    def test_panel_size_does_not_change_result(self):
        a = make_lu_friendly(20, seed=1)
        out1 = BlockedLU(20, {"P0": 4, "P1": 4}, panel=4)(a)
        out2 = BlockedLU(20, {"P0": 4, "P1": 4}, panel=20)(a)
        np.testing.assert_allclose(out1, out2, rtol=1e-9, atol=1e-11)

    def test_tiles_do_not_change_result(self):
        a = make_lu_friendly(16, seed=2)
        ref = lu_reference(a)
        for tiles in [(1, 1), (2, 8), (16, 16), (400, 50)]:
            out = BlockedLU(16, {"P0": tiles[0], "P1": tiles[1]}, panel=4)(a)
            np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-11)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ExecutionError):
            BlockedLU(8, {"P0": 2, "P1": 2})(np.zeros((4, 4)))

    def test_validation(self):
        with pytest.raises(ExecutionError):
            BlockedLU(0, {"P0": 1, "P1": 1})
        with pytest.raises(ExecutionError):
            BlockedLU(8, {"P0": 1, "P1": 1}, panel=0)
        with pytest.raises(SpaceError):
            BlockedLU(8, {"P0": 1})

    def test_module_cache_reused(self):
        solver = BlockedLU(16, {"P0": 4, "P1": 4}, panel=8)
        a = make_lu_friendly(16, seed=3)
        solver(a)
        n_modules = len(solver._modules)
        solver(a)
        assert len(solver._modules) == n_modules  # second call hits the cache

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.sampled_from([8, 12, 16, 24]),
        ty=st.sampled_from([1, 2, 4, 8]),
        tx=st.sampled_from([1, 3, 5, 16]),
        seed=st.integers(0, 100),
    )
    def test_property_blocked_equals_reference(self, n, ty, tx, seed):
        a = make_lu_friendly(n, seed=seed)
        out = BlockedLU(n, {"P0": ty, "P1": tx}, panel=4)(a)
        np.testing.assert_allclose(out, lu_reference(a), rtol=1e-8, atol=1e-10)


class TestBlockedCholesky:
    def test_matches_reference(self):
        a = make_spd(24, seed=0)
        out = BlockedCholesky(24, {"P0": 6, "P1": 4}, panel=8)(a)
        np.testing.assert_allclose(out, cholesky_reference(a), rtol=1e-9, atol=1e-11)

    def test_factorization_identity(self):
        a = make_spd(20, seed=1)
        low = BlockedCholesky(20, {"P0": 5, "P1": 5}, panel=4)(a)
        np.testing.assert_allclose(low @ low.T, a, rtol=1e-9, atol=1e-11)

    def test_tiles_do_not_change_result(self):
        a = make_spd(16, seed=2)
        ref = cholesky_reference(a)
        for ty, tx in [(1, 1), (8, 2), (80, 32)]:
            out = BlockedCholesky(16, {"P0": ty, "P1": tx}, panel=4)(a)
            np.testing.assert_allclose(out, ref, rtol=1e-9, atol=1e-11)

    def test_non_spd_rejected(self):
        from repro.common.errors import ReproError

        bad = np.eye(8)
        bad[3, 3] = -1.0
        with pytest.raises(ReproError):
            BlockedCholesky(8, {"P0": 2, "P1": 2}, panel=4)(bad)

    @settings(max_examples=8, deadline=None)
    @given(
        n=st.sampled_from([8, 12, 20]),
        ty=st.sampled_from([1, 2, 4]),
        tx=st.sampled_from([1, 5, 8]),
        seed=st.integers(0, 100),
    )
    def test_property_blocked_equals_reference(self, n, ty, tx, seed):
        a = make_spd(n, seed=seed)
        out = BlockedCholesky(n, {"P0": ty, "P1": tx}, panel=4)(a)
        np.testing.assert_allclose(out, cholesky_reference(a), rtol=1e-8, atol=1e-10)
