"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

import repro.te as te


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite committed golden files (e.g. generated C sources) "
        "instead of comparing against them",
    )


@pytest.fixture
def update_goldens(request: pytest.FixtureRequest) -> bool:
    return bool(request.config.getoption("--update-goldens"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


def make_matmul(n: int = 12, m: int = 10, k: int = 8, dtype: str = "float32"):
    """A fresh matmul graph: returns (A, B, C) tensors."""
    A = te.placeholder((n, k), name="A", dtype=dtype)
    B = te.placeholder((k, m), name="B", dtype=dtype)
    kk = te.reduce_axis((0, k), name="k")
    C = te.compute(
        (n, m), lambda i, j: te.sum(A[i, kk] * B[kk, j], axis=kk), name="C"
    )
    return A, B, C


@pytest.fixture
def matmul():
    return make_matmul()
