"""Tests for hyperparameter types."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.common.errors import SpaceError
from repro.configspace import (
    CategoricalHyperparameter,
    Constant,
    OrdinalHyperparameter,
    UniformFloatHyperparameter,
    UniformIntegerHyperparameter,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestOrdinal:
    def test_sequence_preserved(self):
        hp = OrdinalHyperparameter("P0", [1, 2, 4, 8])
        assert hp.sequence == [1, 2, 4, 8]
        assert hp.size() == 4

    def test_default_is_first(self):
        assert OrdinalHyperparameter("P0", [3, 1]).default_value == 3

    def test_explicit_default(self):
        assert OrdinalHyperparameter("P0", [1, 2], default_value=2).default_value == 2

    def test_bad_default_rejected(self):
        with pytest.raises(SpaceError):
            OrdinalHyperparameter("P0", [1, 2], default_value=5)

    def test_empty_rejected(self):
        with pytest.raises(SpaceError):
            OrdinalHyperparameter("P0", [])

    def test_duplicates_rejected(self):
        with pytest.raises(SpaceError):
            OrdinalHyperparameter("P0", [1, 1, 2])

    def test_sample_legal(self, rng):
        hp = OrdinalHyperparameter("P0", [1, 2, 4])
        for _ in range(20):
            assert hp.is_legal(hp.sample(rng))

    def test_encode_positions(self):
        hp = OrdinalHyperparameter("P0", [1, 2, 4, 8, 16])
        assert hp.encode(1) == 0.0
        assert hp.encode(16) == 1.0
        assert hp.encode(4) == pytest.approx(0.5)

    def test_encode_illegal_rejected(self):
        with pytest.raises(SpaceError):
            OrdinalHyperparameter("P0", [1, 2]).encode(7)

    def test_decode_inverts_encode(self):
        hp = OrdinalHyperparameter("P0", [1, 2, 4, 8])
        for v in hp.sequence:
            assert hp.decode(hp.encode(v)) == v

    def test_neighbors_adjacent(self, rng):
        hp = OrdinalHyperparameter("P0", [1, 2, 4, 8, 16])
        nbs = hp.neighbors(4, rng, n=2)
        assert set(nbs) <= {2, 8, 1, 16}
        assert 2 in nbs and 8 in nbs

    def test_neighbors_at_boundary(self, rng):
        hp = OrdinalHyperparameter("P0", [1, 2, 4])
        assert 2 in hp.neighbors(1, rng, n=2)

    def test_single_value_encode(self):
        assert OrdinalHyperparameter("P0", [5]).encode(5) == 0.0

    @given(st.lists(st.integers(0, 100), min_size=2, max_size=20, unique=True))
    def test_encode_in_unit_interval(self, values):
        hp = OrdinalHyperparameter("P", values)
        for v in values:
            assert 0.0 <= hp.encode(v) <= 1.0


class TestCategorical:
    def test_choices(self):
        hp = CategoricalHyperparameter("c", ["a", "b", "c"])
        assert hp.choices == ["a", "b", "c"]

    def test_weighted_sampling_bias(self, rng):
        hp = CategoricalHyperparameter("c", ["a", "b"], weights=[0.95, 0.05])
        samples = [hp.sample(rng) for _ in range(300)]
        assert samples.count("a") > 200

    def test_bad_weights_rejected(self):
        with pytest.raises(SpaceError):
            CategoricalHyperparameter("c", ["a", "b"], weights=[1.0])

    def test_neighbors_are_other_choices(self, rng):
        hp = CategoricalHyperparameter("c", ["a", "b", "c"])
        nbs = hp.neighbors("a", rng, n=5)
        assert "a" not in nbs and set(nbs) <= {"b", "c"}


class TestUniformInteger:
    def test_range_validation(self):
        with pytest.raises(SpaceError):
            UniformIntegerHyperparameter("n", 10, 5)

    def test_log_requires_positive(self):
        with pytest.raises(SpaceError):
            UniformIntegerHyperparameter("n", 0, 5, log=True)

    def test_sample_in_range(self, rng):
        hp = UniformIntegerHyperparameter("n", 3, 17)
        for _ in range(50):
            v = hp.sample(rng)
            assert 3 <= v <= 17

    def test_log_sample_in_range(self, rng):
        hp = UniformIntegerHyperparameter("n", 1, 1024, log=True)
        for _ in range(50):
            assert 1 <= hp.sample(rng) <= 1024

    def test_encode_decode(self):
        hp = UniformIntegerHyperparameter("n", 0, 10)
        assert hp.encode(0) == 0.0 and hp.encode(10) == 1.0
        assert hp.decode(0.5) == 5

    def test_size(self):
        assert UniformIntegerHyperparameter("n", 1, 5).size() == 5

    def test_neighbors_in_range(self, rng):
        hp = UniformIntegerHyperparameter("n", 0, 100)
        for nb in hp.neighbors(50, rng):
            assert 0 <= nb <= 100 and nb != 50


class TestUniformFloat:
    def test_sample_in_range(self, rng):
        hp = UniformFloatHyperparameter("x", -1.0, 1.0)
        for _ in range(50):
            assert -1.0 <= hp.sample(rng) <= 1.0

    def test_size_infinite(self):
        assert UniformFloatHyperparameter("x", 0, 1).size() == float("inf")

    def test_log_encode_decode(self):
        hp = UniformFloatHyperparameter("x", 1.0, 100.0, log=True)
        assert hp.decode(hp.encode(10.0)) == pytest.approx(10.0)


class TestConstant:
    def test_always_same(self, rng):
        hp = Constant("k", 42)
        assert hp.sample(rng) == 42
        assert hp.is_legal(42) and not hp.is_legal(41)
        assert hp.size() == 1.0
        assert hp.neighbors(42, rng) == []


class TestSampleEncoded:
    """`sample_encoded` == (`sample`, `encode`) on the same RNG stream.

    The batch-sampling hot path relies on both halves: the value/encoding
    pair must match the two-call form exactly, and the RNG must advance by
    the same amount so seeded trajectories are unchanged.
    """

    HPS = [
        OrdinalHyperparameter("o", [1, 2, 4, 8, 16]),
        OrdinalHyperparameter("one", [7]),
        CategoricalHyperparameter("c", ["a", "b", "c"]),
        CategoricalHyperparameter("w", ["a", "b", "c"], weights=[0.6, 0.3, 0.1]),
        UniformIntegerHyperparameter("i", 3, 40),
        UniformFloatHyperparameter("f", 0.5, 2.5),
        Constant("k", 42),
    ]

    @pytest.mark.parametrize("hp", HPS, ids=lambda h: h.name)
    def test_matches_sample_then_encode(self, hp):
        r1 = np.random.default_rng(123)
        r2 = np.random.default_rng(123)
        for _ in range(200):
            v1, e1 = hp.sample_encoded(r1)
            v2 = hp.sample(r2)
            assert v1 == v2
            assert e1 == hp.encode(v2)
        # Streams stayed in lockstep: the next raw draw agrees.
        assert r1.integers(1 << 30) == r2.integers(1 << 30)
