"""Tests for ConfigurationSpace and Configuration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SpaceError
from repro.configspace import (
    CategoricalHyperparameter,
    Configuration,
    ConfigurationSpace,
    EqualsCondition,
    InCondition,
    OrdinalHyperparameter,
    UniformFloatHyperparameter,
)
from repro.configspace.space import INACTIVE


def _flat_space(seed=None):
    cs = ConfigurationSpace(seed=seed)
    cs.add_hyperparameters(
        [
            OrdinalHyperparameter("P0", [1, 2, 4, 8]),
            OrdinalHyperparameter("P1", [1, 3, 9]),
        ]
    )
    return cs


def _conditional_space(seed=None):
    cs = ConfigurationSpace(seed=seed)
    algo = CategoricalHyperparameter("algo", ["tiled", "naive"])
    tile = OrdinalHyperparameter("tile", [2, 4, 8])
    cs.add_hyperparameters([algo, tile])
    cs.add_condition(EqualsCondition(tile, algo, "tiled"))
    return cs


class TestConstruction:
    def test_duplicate_name_rejected(self):
        cs = _flat_space()
        with pytest.raises(SpaceError):
            cs.add_hyperparameter(OrdinalHyperparameter("P0", [1]))

    def test_size_product(self):
        assert _flat_space().size() == 12.0

    def test_size_infinite_with_float(self):
        cs = _flat_space()
        cs.add_hyperparameter(UniformFloatHyperparameter("x", 0, 1))
        assert cs.size() == float("inf")

    def test_get_hyperparameter(self):
        cs = _flat_space()
        assert cs.get_hyperparameter("P0").name == "P0"
        with pytest.raises(SpaceError):
            cs.get_hyperparameter("nope")

    def test_condition_unknown_param_rejected(self):
        cs = ConfigurationSpace()
        a = CategoricalHyperparameter("a", ["x"])
        b = OrdinalHyperparameter("b", [1])
        cs.add_hyperparameter(a)
        with pytest.raises(SpaceError):
            cs.add_condition(EqualsCondition(b, a, "x"))

    def test_condition_cycle_rejected(self):
        cs = ConfigurationSpace()
        a = CategoricalHyperparameter("a", ["x", "y"])
        b = CategoricalHyperparameter("b", ["u", "v"])
        cs.add_hyperparameters([a, b])
        cs.add_condition(EqualsCondition(b, a, "x"))
        with pytest.raises(SpaceError):
            cs.add_condition(EqualsCondition(a, b, "u"))

    def test_self_condition_rejected(self):
        a = CategoricalHyperparameter("a", ["x", "y"])
        with pytest.raises(SpaceError):
            EqualsCondition(a, a, "x")


class TestSampling:
    def test_seeded_determinism(self):
        a = [c.get_dictionary() for c in _flat_space(seed=5).sample_configuration(10)]
        b = [c.get_dictionary() for c in _flat_space(seed=5).sample_configuration(10)]
        assert a == b

    def test_sample_size(self):
        assert len(_flat_space(seed=0).sample_configuration(7)) == 7

    def test_single_sample_is_configuration(self):
        assert isinstance(_flat_space(seed=0).sample_configuration(), Configuration)

    def test_bad_size_rejected(self):
        with pytest.raises(SpaceError):
            _flat_space().sample_configuration(0)

    def test_samples_are_legal(self):
        cs = _flat_space(seed=1)
        for c in cs.sample_configuration(30):
            cs.check_configuration(c.get_dictionary())

    def test_conditional_sampling_respects_activity(self):
        cs = _conditional_space(seed=3)
        saw_active = saw_inactive = False
        for c in cs.sample_configuration(40):
            d = c.get_dictionary()
            if d["algo"] == "tiled":
                assert "tile" in d
                saw_active = True
            else:
                assert "tile" not in d
                saw_inactive = True
        assert saw_active and saw_inactive

    def test_default_configuration(self):
        cs = _flat_space()
        assert cs.default_configuration().get_dictionary() == {"P0": 1, "P1": 1}

    def test_in_condition(self):
        cs = ConfigurationSpace(seed=0)
        a = OrdinalHyperparameter("a", [1, 2, 3])
        b = OrdinalHyperparameter("b", [10, 20])
        cs.add_hyperparameters([a, b])
        cs.add_condition(InCondition(b, a, [2, 3]))
        for c in cs.sample_configuration(30):
            d = c.get_dictionary()
            assert ("b" in d) == (d["a"] in (2, 3))


class TestValidation:
    def test_unknown_param_rejected(self):
        with pytest.raises(SpaceError):
            Configuration(_flat_space(), {"P0": 1, "P1": 1, "PX": 2})

    def test_missing_param_rejected(self):
        with pytest.raises(SpaceError):
            Configuration(_flat_space(), {"P0": 1})

    def test_illegal_value_rejected(self):
        with pytest.raises(SpaceError):
            Configuration(_flat_space(), {"P0": 7, "P1": 1})

    def test_inactive_value_rejected(self):
        cs = _conditional_space()
        with pytest.raises(SpaceError):
            Configuration(cs, {"algo": "naive", "tile": 4})


class TestEncoding:
    def test_encoding_order_and_range(self):
        cs = _flat_space()
        arr = cs.encode({"P0": 8, "P1": 1})
        np.testing.assert_allclose(arr, [1.0, 0.0])

    def test_inactive_encodes_sentinel(self):
        cs = _conditional_space()
        arr = cs.encode({"algo": "naive"})
        assert arr[1] == INACTIVE

    def test_encode_many_shape(self):
        cs = _flat_space(seed=0)
        configs = cs.sample_configuration(5)
        assert cs.encode_many([c.get_dictionary() for c in configs]).shape == (5, 2)

    def test_configuration_hash_eq(self):
        cs = _flat_space()
        c1 = Configuration(cs, {"P0": 2, "P1": 3})
        c2 = Configuration(cs, {"P0": 2, "P1": 3})
        assert c1 == c2 and hash(c1) == hash(c2)
        assert c1 in {c2}


class TestBatchSampling:
    """`sample_configuration_batch` is a drop-in for n sequential samples.

    Identical values, identical encodings, and — critically for seeded tuner
    trajectories — an identical RNG stream: the draw *after* a batch must
    equal the draw after the same number of sequential samples.
    """

    @staticmethod
    def _uniform_space(seed=None):
        # Equal cardinalities + no weights: the single-fused-draw fast path.
        cs = ConfigurationSpace(seed=seed)
        cs.add_hyperparameters(
            [OrdinalHyperparameter(f"P{i}", [1, 2, 4, 8]) for i in range(3)]
        )
        return cs

    def _assert_batch_matches_sequential(self, make_space, n=50):
        batch_cs = make_space(11)
        configs, X = batch_cs.sample_configuration_batch(n)
        seq_cs = make_space(11)
        expected = [seq_cs.sample_configuration() for _ in range(n)]
        assert [c.get_dictionary() for c in configs] == [
            c.get_dictionary() for c in expected
        ]
        for i, c in enumerate(expected):
            np.testing.assert_array_equal(X[i], c.get_array())
            np.testing.assert_array_equal(configs[i].get_array(), c.get_array())
        # Post-batch RNG state: the next sequential draw agrees.
        assert (
            batch_cs.sample_configuration().get_dictionary()
            == seq_cs.sample_configuration().get_dictionary()
        )

    def test_fused_path_matches_sequential(self):
        self._assert_batch_matches_sequential(self._uniform_space)

    def test_mixed_cardinality_matches_sequential(self):
        self._assert_batch_matches_sequential(_flat_space)

    def test_conditional_matches_sequential(self):
        self._assert_batch_matches_sequential(_conditional_space)

    def test_weighted_categorical_matches_sequential(self):
        def make(seed):
            cs = ConfigurationSpace(seed=seed)
            cs.add_hyperparameters(
                [
                    CategoricalHyperparameter(
                        "w", ["a", "b", "c"], weights=[0.7, 0.2, 0.1]
                    ),
                    CategoricalHyperparameter("u", ["x", "y", "z"]),
                ]
            )
            return cs

        self._assert_batch_matches_sequential(make)

    def test_rows_are_memoized_arrays(self):
        cs = self._uniform_space(0)
        configs, X = cs.sample_configuration_batch(4)
        for i, c in enumerate(configs):
            assert c.get_array() is c.get_array()  # memoized, not recomputed
            np.testing.assert_array_equal(c.get_array(), cs.encode(c.get_dictionary()))

    def test_batch_size_validation(self):
        with pytest.raises(SpaceError):
            _flat_space(seed=0).sample_configuration_batch(-1)

    def test_empty_batch(self):
        configs, X = _flat_space(seed=0).sample_configuration_batch(0)
        assert configs == [] and X.shape == (0, 2)


class TestNeighbors:
    def test_single_param_changed(self):
        cs = _flat_space(seed=0)
        base = {"P0": 2, "P1": 3}
        for nb in cs.neighbors(base, np.random.default_rng(0)):
            diff = [k for k in base if nb[k] != base[k]]
            assert len(diff) == 1

    def test_neighbors_are_valid(self):
        cs = _conditional_space(seed=0)
        base = cs.sample_configuration().get_dictionary()
        for nb in cs.neighbors(base, np.random.default_rng(1)):
            cs.check_configuration(nb.get_dictionary())

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_sampling_always_valid(self, seed):
        cs = _conditional_space(seed=seed)
        c = cs.sample_configuration()
        cs.check_configuration(c.get_dictionary())
