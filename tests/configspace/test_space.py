"""Tests for ConfigurationSpace and Configuration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SpaceError
from repro.configspace import (
    CategoricalHyperparameter,
    Configuration,
    ConfigurationSpace,
    EqualsCondition,
    InCondition,
    OrdinalHyperparameter,
    UniformFloatHyperparameter,
)
from repro.configspace.space import INACTIVE


def _flat_space(seed=None):
    cs = ConfigurationSpace(seed=seed)
    cs.add_hyperparameters(
        [
            OrdinalHyperparameter("P0", [1, 2, 4, 8]),
            OrdinalHyperparameter("P1", [1, 3, 9]),
        ]
    )
    return cs


def _conditional_space(seed=None):
    cs = ConfigurationSpace(seed=seed)
    algo = CategoricalHyperparameter("algo", ["tiled", "naive"])
    tile = OrdinalHyperparameter("tile", [2, 4, 8])
    cs.add_hyperparameters([algo, tile])
    cs.add_condition(EqualsCondition(tile, algo, "tiled"))
    return cs


class TestConstruction:
    def test_duplicate_name_rejected(self):
        cs = _flat_space()
        with pytest.raises(SpaceError):
            cs.add_hyperparameter(OrdinalHyperparameter("P0", [1]))

    def test_size_product(self):
        assert _flat_space().size() == 12.0

    def test_size_infinite_with_float(self):
        cs = _flat_space()
        cs.add_hyperparameter(UniformFloatHyperparameter("x", 0, 1))
        assert cs.size() == float("inf")

    def test_get_hyperparameter(self):
        cs = _flat_space()
        assert cs.get_hyperparameter("P0").name == "P0"
        with pytest.raises(SpaceError):
            cs.get_hyperparameter("nope")

    def test_condition_unknown_param_rejected(self):
        cs = ConfigurationSpace()
        a = CategoricalHyperparameter("a", ["x"])
        b = OrdinalHyperparameter("b", [1])
        cs.add_hyperparameter(a)
        with pytest.raises(SpaceError):
            cs.add_condition(EqualsCondition(b, a, "x"))

    def test_condition_cycle_rejected(self):
        cs = ConfigurationSpace()
        a = CategoricalHyperparameter("a", ["x", "y"])
        b = CategoricalHyperparameter("b", ["u", "v"])
        cs.add_hyperparameters([a, b])
        cs.add_condition(EqualsCondition(b, a, "x"))
        with pytest.raises(SpaceError):
            cs.add_condition(EqualsCondition(a, b, "u"))

    def test_self_condition_rejected(self):
        a = CategoricalHyperparameter("a", ["x", "y"])
        with pytest.raises(SpaceError):
            EqualsCondition(a, a, "x")


class TestSampling:
    def test_seeded_determinism(self):
        a = [c.get_dictionary() for c in _flat_space(seed=5).sample_configuration(10)]
        b = [c.get_dictionary() for c in _flat_space(seed=5).sample_configuration(10)]
        assert a == b

    def test_sample_size(self):
        assert len(_flat_space(seed=0).sample_configuration(7)) == 7

    def test_single_sample_is_configuration(self):
        assert isinstance(_flat_space(seed=0).sample_configuration(), Configuration)

    def test_bad_size_rejected(self):
        with pytest.raises(SpaceError):
            _flat_space().sample_configuration(0)

    def test_samples_are_legal(self):
        cs = _flat_space(seed=1)
        for c in cs.sample_configuration(30):
            cs.check_configuration(c.get_dictionary())

    def test_conditional_sampling_respects_activity(self):
        cs = _conditional_space(seed=3)
        saw_active = saw_inactive = False
        for c in cs.sample_configuration(40):
            d = c.get_dictionary()
            if d["algo"] == "tiled":
                assert "tile" in d
                saw_active = True
            else:
                assert "tile" not in d
                saw_inactive = True
        assert saw_active and saw_inactive

    def test_default_configuration(self):
        cs = _flat_space()
        assert cs.default_configuration().get_dictionary() == {"P0": 1, "P1": 1}

    def test_in_condition(self):
        cs = ConfigurationSpace(seed=0)
        a = OrdinalHyperparameter("a", [1, 2, 3])
        b = OrdinalHyperparameter("b", [10, 20])
        cs.add_hyperparameters([a, b])
        cs.add_condition(InCondition(b, a, [2, 3]))
        for c in cs.sample_configuration(30):
            d = c.get_dictionary()
            assert ("b" in d) == (d["a"] in (2, 3))


class TestValidation:
    def test_unknown_param_rejected(self):
        with pytest.raises(SpaceError):
            Configuration(_flat_space(), {"P0": 1, "P1": 1, "PX": 2})

    def test_missing_param_rejected(self):
        with pytest.raises(SpaceError):
            Configuration(_flat_space(), {"P0": 1})

    def test_illegal_value_rejected(self):
        with pytest.raises(SpaceError):
            Configuration(_flat_space(), {"P0": 7, "P1": 1})

    def test_inactive_value_rejected(self):
        cs = _conditional_space()
        with pytest.raises(SpaceError):
            Configuration(cs, {"algo": "naive", "tile": 4})


class TestEncoding:
    def test_encoding_order_and_range(self):
        cs = _flat_space()
        arr = cs.encode({"P0": 8, "P1": 1})
        np.testing.assert_allclose(arr, [1.0, 0.0])

    def test_inactive_encodes_sentinel(self):
        cs = _conditional_space()
        arr = cs.encode({"algo": "naive"})
        assert arr[1] == INACTIVE

    def test_encode_many_shape(self):
        cs = _flat_space(seed=0)
        configs = cs.sample_configuration(5)
        assert cs.encode_many([c.get_dictionary() for c in configs]).shape == (5, 2)

    def test_configuration_hash_eq(self):
        cs = _flat_space()
        c1 = Configuration(cs, {"P0": 2, "P1": 3})
        c2 = Configuration(cs, {"P0": 2, "P1": 3})
        assert c1 == c2 and hash(c1) == hash(c2)
        assert c1 in {c2}


class TestNeighbors:
    def test_single_param_changed(self):
        cs = _flat_space(seed=0)
        base = {"P0": 2, "P1": 3}
        for nb in cs.neighbors(base, np.random.default_rng(0)):
            diff = [k for k in base if nb[k] != base[k]]
            assert len(diff) == 1

    def test_neighbors_are_valid(self):
        cs = _conditional_space(seed=0)
        base = cs.sample_configuration().get_dictionary()
        for nb in cs.neighbors(base, np.random.default_rng(1)):
            cs.check_configuration(nb.get_dictionary())

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_sampling_always_valid(self, seed):
        cs = _conditional_space(seed=seed)
        c = cs.sample_configuration()
        cs.check_configuration(c.get_dictionary())
