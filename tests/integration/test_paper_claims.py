"""Regression battery for the paper's headline claims (SC'23 §5).

Pins the qualitative results the reproduction must keep exhibiting:

* AutoTVM-XGB stalls at 56 evaluations no matter how large the budget;
* GridSearch finds the worst (or tied-worst) kernel of the five tuners;
* ytopt has the lowest total autotuning process time at EXTRALARGE sizes,
  where AutoTVM's number=3 re-execution of 14-second kernels dominates;
* the multi-fidelity options (``--prune --probe-repeats 2``) cut ytopt's
  total process time substantially without degrading the best kernel found.
"""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment, run_tuner
from repro.experiments.runner import ALL_TUNERS
from repro.kernels import get_benchmark


class TestXGBTrialCap:
    @pytest.mark.parametrize("budget", [60, 150])
    def test_xgb_stalls_at_56_regardless_of_budget(self, budget):
        run = run_tuner(
            get_benchmark("lu", "large"), "AutoTVM-XGB", max_evals=budget, seed=0
        )
        assert run.n_evals == 56


class TestGridSearchIsWorst:
    @pytest.mark.parametrize("kernel", ["lu", "cholesky"])
    def test_gridsearch_worst_or_tied(self, kernel):
        result = run_experiment(
            kernel, "large", tuners=ALL_TUNERS, max_evals=20, seed=0
        )
        grid = result.runs["AutoTVM-GridSearch"].best_runtime
        others = [
            r.best_runtime
            for name, r in result.runs.items()
            if name != "AutoTVM-GridSearch"
        ]
        assert all(grid >= o for o in others)


class TestYtoptFastestAtExtralarge:
    def test_lowest_total_process_time(self):
        # Paper Fig. 7/8: at EXTRALARGE the kernel takes ~14 s per run, so
        # AutoTVM's 3-run averaging dwarfs ytopt's single measurement.
        result = run_experiment(
            "lu",
            "extralarge",
            tuners=("ytopt", "AutoTVM-Random", "AutoTVM-GA"),
            max_evals=20,
            seed=0,
        )
        assert result.fastest_process().tuner == "ytopt"
        ytopt_time = result.runs["ytopt"].total_time
        for name in ("AutoTVM-Random", "AutoTVM-GA"):
            assert ytopt_time < result.runs[name].total_time


class TestFidelityAcceptance:
    def test_prune_and_probe_cut_process_time_without_losing_quality(self):
        """Acceptance: --prune --probe-repeats 2 improves ytopt's total
        process time by >= 15% while the best runtime stays within 5%."""
        bench = get_benchmark("lu", "large")
        baseline = run_tuner(bench, "ytopt", max_evals=100, seed=0)
        tuned = run_tuner(
            bench, "ytopt", max_evals=100, seed=0, prune=True, probe_repeats=2
        )
        assert tuned.total_time <= 0.85 * baseline.total_time
        assert tuned.best_runtime <= 1.05 * baseline.best_runtime
        assert tuned.n_evals == baseline.n_evals  # pruned trials still count
