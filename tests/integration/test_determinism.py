"""Determinism battery: same seed ⇒ byte-identical runs, everywhere.

Every tuner under the simulated Swing backend is a pure function of its seed:
re-running with the same seed must reproduce the trajectory, the best
configuration, the performance database contents, and the telemetry stream
exactly — with and without the multi-fidelity options (``probe_repeats``,
``prune``), and regardless of whether telemetry is attached.
"""

from __future__ import annotations

import pytest

from repro.common.timing import VirtualClock
from repro.core import AutotuneConfig, BayesianAutotuner
from repro.experiments import run_tuner
from repro.experiments.runner import ALL_TUNERS
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator, SwingPerformanceModel
from repro.telemetry import (
    RecordingSink,
    RunStore,
    StoreSink,
    Telemetry,
    telemetry_session,
)

KERNELS = [("lu", "large"), ("cholesky", "large")]


def _run(tuner, kernel, size, seed=3, max_evals=8, **kw):
    return run_tuner(get_benchmark(kernel, size), tuner, max_evals=max_evals, seed=seed, **kw)


def _assert_identical(a, b):
    assert a.trajectory == b.trajectory  # exact float equality, element-wise
    assert a.best_config == b.best_config
    assert a.best_runtime == b.best_runtime
    assert a.total_time == b.total_time
    assert a.n_evals == b.n_evals


class TestSameSeedSameRun:
    @pytest.mark.parametrize("kernel,size", KERNELS)
    @pytest.mark.parametrize("tuner", ALL_TUNERS)
    def test_trajectory_reproduced(self, tuner, kernel, size):
        _assert_identical(_run(tuner, kernel, size), _run(tuner, kernel, size))

    def test_different_seeds_differ(self):
        a = _run("ytopt", "lu", "large", seed=0, max_evals=10)
        b = _run("ytopt", "lu", "large", seed=1, max_evals=10)
        assert a.trajectory != b.trajectory


class TestFidelityOptionsDeterministic:
    @pytest.mark.parametrize("tuner", ["ytopt", "AutoTVM-GA"])
    def test_probe_repeats_reproduced(self, tuner):
        kw = dict(repeats=3, probe_repeats=1, max_evals=8)
        _assert_identical(
            _run(tuner, "lu", "large", **kw), _run(tuner, "lu", "large", **kw)
        )

    def test_prune_reproduced(self):
        kw = dict(prune=True, max_evals=25)
        _assert_identical(
            _run("ytopt", "lu", "large", **kw), _run("ytopt", "lu", "large", **kw)
        )

    def test_prune_and_probe_together_reproduced(self):
        kw = dict(prune=True, repeats=3, probe_repeats=1, max_evals=25)
        _assert_identical(
            _run("ytopt", "cholesky", "large", **kw),
            _run("ytopt", "cholesky", "large", **kw),
        )


class TestDatabaseByteIdentical:
    def _csv(self, tmp_path, name):
        bench = get_benchmark("lu", "large")
        evaluator = SwingEvaluator(
            bench.profile,
            model=SwingPerformanceModel(seed_tag="swing-v1-seed0"),
            clock=VirtualClock(),
            number=1,
        )
        bo = BayesianAutotuner(
            bench.config_space(seed=0),
            evaluator,
            config=AutotuneConfig(max_evals=8, seed=0),
            name=bench.name,
        )
        path = tmp_path / name
        bo.run().database.to_csv(path)
        return path

    def test_ytopt_database_dump_identical(self, tmp_path):
        a = self._csv(tmp_path, "a.csv")
        b = self._csv(tmp_path, "b.csv")
        assert a.read_bytes() == b.read_bytes()

    def test_store_rows_identical_across_reruns(self, tmp_path):
        """Two traced runs persist byte-for-byte the same evaluation rows."""

        def traced(name):
            db = tmp_path / name
            tel = Telemetry(sinks=[StoreSink(RunStore(db), own_store=True)])
            with telemetry_session(tel):
                _run("ytopt", "lu", "large", prune=True, max_evals=20)
            tel.close()
            with RunStore(db) as store:
                (run,) = store.runs()
                return [
                    (
                        e.index,
                        tuple(sorted(e.config.items())),
                        e.runtime,
                        e.compile_time,
                        e.elapsed,
                        e.error,
                        e.cache_hit,
                        e.fidelity,
                    )
                    for e in store.evaluations(run.run_id)
                ]

        assert traced("a.sqlite") == traced("b.sqlite")


class TestTelemetryDoesNotPerturbTheSearch:
    @pytest.mark.parametrize(
        "kw",
        [
            dict(),
            dict(prune=True, max_evals=20),
            dict(repeats=3, probe_repeats=1),
        ],
        ids=["plain", "prune", "probe"],
    )
    def test_on_vs_off_identical(self, tmp_path, kw):
        plain = _run("ytopt", "lu", "large", **kw)
        sink = RecordingSink()
        tel = Telemetry(
            sinks=[sink, StoreSink(RunStore(tmp_path / "r.sqlite"), own_store=True)]
        )
        with telemetry_session(tel):
            traced = _run("ytopt", "lu", "large", **kw)
        tel.close()
        _assert_identical(plain, traced)
        assert sink.events  # telemetry actually ran

    def test_event_stream_reproduced(self):
        def capture():
            sink = RecordingSink()
            tel = Telemetry(sinks=[sink])
            with telemetry_session(tel):
                _run("ytopt", "lu", "large", prune=True, repeats=3,
                     probe_repeats=1, max_evals=20)
            tel.close()
            return [
                (e.kind, getattr(e, "runtime", None), getattr(e, "elapsed", None))
                for e in sink.events
            ]

        assert capture() == capture()
