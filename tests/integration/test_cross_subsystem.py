"""Cross-subsystem integrations: AutoScheduler on Relay subgraphs, molds on
the simulated backend, transfer from ytopt runs into AutoTVM, etc."""

import numpy as np
import pytest

from repro import relay
from repro.autoscheduler import SearchTask, TuningOptions, auto_schedule
from repro.common.timing import VirtualClock
from repro.relay.build import lower_group
from repro.relay.transform import fuse_ops, infer_shapes
from repro.runtime import build
from repro.swing import ScheduleSwingEvaluator
from repro.ytopt import Plopper


class TestAutoschedulerOnRelaySubgraph:
    def test_auto_schedule_a_fused_dense_group(self):
        # Build a dense+relu model, take its fused subgraph, and let the
        # mini-Ansor derive and search the schedule space for it.
        rng = np.random.default_rng(0)
        x = relay.var("x", (16, 32))
        w = relay.const(rng.standard_normal((24, 32)), "w")
        f = relay.Function([x], relay.relu(relay.dense(x, w)))
        infer_shapes(f)
        group = fuse_ops(f)[0]

        def graph_builder():
            _sched, args, _ext = lower_group(group)
            return list(args)

        task = SearchTask(graph_builder, name="relay-dense", target="llvm")
        result = auto_schedule(task, TuningOptions(n_trials=8, seed=0))
        assert result.n_trials == 8
        # The derived space tiles the dense stage (named after the graph node).
        assert any(p.endswith(".y") for p in result.sketch.params)

        # The winning annotation builds and computes the right thing.
        sched, args = task.apply_best(result.best_annotation)
        mod = build(sched, args)
        xv = rng.standard_normal((16, 32))
        wv = w.value
        out = np.zeros((16, 24))
        mod(xv, wv, out)
        np.testing.assert_allclose(out, np.maximum(xv @ wv.T, 0), rtol=1e-10)


class TestMoldOnSimulatedBackend:
    def test_plopper_priced_by_swing_model(self):
        mold = """
def build_schedule():
    A = te.placeholder((512, 512), name="A")
    B = te.placeholder((512, 512), name="B")
    k = te.reduce_axis((0, 512), name="k")
    C = te.compute((512, 512), lambda i, j: te.sum(A[i, k] * B[k, j], axis=k))
    s = te.create_schedule(C.op)
    yo, yi = s[C].split(s[C].op.axis[0], #P0)
    xo, xi = s[C].split(s[C].op.axis[1], #P1)
    s[C].reorder(yo, xo, s[C].op.reduce_axis[0], yi, xi)
    return s, [A, B, C]
"""
        plopper = Plopper(mold)
        ev = ScheduleSwingEvaluator(plopper.schedule_builder(), clock=VirtualClock())
        fast = ev.evaluate({"P0": 32, "P1": 64})
        slow = ev.evaluate({"P0": 1, "P1": 1})
        assert fast.ok and slow.ok
        assert fast.mean_cost < slow.mean_cost


class TestYtoptRecordsIntoAutoTVM:
    def test_bo_results_warm_start_xgb(self):
        # Run ytopt, convert its database into AutoTVM records, warm-start XGB.
        from repro.autotvm import (
            Measurer,
            TuningRecord,
            XGBTuner,
            measure_option,
            task_from_benchmark,
            warm_start,
        )
        from repro.kernels import get_benchmark
        from repro.swing import SwingEvaluator
        from repro.ytopt import AMBS, TuningProblem

        bench = get_benchmark("cholesky", "large")
        ev1 = SwingEvaluator(bench.profile, clock=VirtualClock())
        bo_result = AMBS(
            TuningProblem(bench.config_space(seed=0), ev1, name=bench.name),
            max_evals=20,
            seed=0,
        ).run()

        records = [
            TuningRecord(
                task=bench.name,
                tuner="ytopt",
                config=r.config,
                costs=(r.runtime,) if r.ok else (),
                compile_time=r.compile_time,
                timestamp=r.elapsed,
                error=r.error,
            )
            for r in bo_result.database
        ]
        ev2 = SwingEvaluator(bench.profile, clock=VirtualClock())
        task = task_from_benchmark(bench, ev2)
        tuner = XGBTuner(task, seed=1)
        absorbed = warm_start(tuner, records)
        assert absorbed == 20
        tuner.tune(
            n_trial=10,
            measurer=Measurer(ev2, measure_option(number=1, batch_overhead=0.0)),
        )
        # Transferred best is part of the warm-started tuner's view.
        assert tuner.best()[1] <= bo_result.best_runtime
