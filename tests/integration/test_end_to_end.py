"""End-to-end integration tests across the whole stack."""

import numpy as np
import pytest

from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.core import AutotuneConfig, BayesianAutotuner
from repro.kernels import BlockedLU, get_benchmark
from repro.kernels.extra import gemm_tuned
from repro.kernels.reference import lu_reference, make_lu_friendly
from repro.runtime import build
from repro.runtime.measure import LocalEvaluator
from repro.ytopt import AMBS, Plopper, TuningProblem


class TestLocalTuningPipeline:
    """Paper Fig. 3 Steps 1-5, with real compilation and execution."""

    def test_bo_tunes_real_gemm_and_result_is_runnable(self):
        space = ConfigurationSpace(seed=0)
        space.add_hyperparameters(
            [
                OrdinalHyperparameter("P0", [1, 2, 4, 8, 16, 32]),
                OrdinalHyperparameter("P1", [1, 2, 4, 8, 16, 32]),
            ]
        )
        tuner = BayesianAutotuner.for_schedule_builder(
            space,
            lambda p: gemm_tuned(32, 32, 32, p),
            config=AutotuneConfig(max_evals=10, n_initial_points=4, seed=0),
        )
        result = tuner.run()

        # The winning configuration must build and compute correctly.
        sched, args = gemm_tuned(32, 32, 32, result.best_config)
        mod = build(sched, args)
        rng = np.random.default_rng(0)
        a, b, c = rng.random((32, 32)), rng.random((32, 32)), rng.random((32, 32))
        out = np.zeros((32, 32))
        mod(a, b, c, out)
        np.testing.assert_allclose(out, 1.5 * a @ b + 1.2 * c, rtol=1e-10)

    def test_found_config_beats_worst_corner(self):
        # Real execution: the tuner's pick must outperform the pathological
        # all-ones tiling by a wide margin on this machine.
        space = ConfigurationSpace(seed=1)
        space.add_hyperparameters(
            [
                OrdinalHyperparameter("P0", [1, 2, 4, 8, 16, 32]),
                OrdinalHyperparameter("P1", [1, 2, 4, 8, 16, 32]),
            ]
        )
        evaluator = LocalEvaluator(lambda p: gemm_tuned(32, 32, 32, p), seed=0)
        problem = TuningProblem(space, evaluator)
        result = AMBS(problem, max_evals=10, seed=1).run()
        worst = evaluator.evaluate({"P0": 1, "P1": 1})
        assert result.best_runtime < worst.mean_cost

    def test_codemold_to_execution(self):
        mold = """
def build_schedule():
    A = te.placeholder((16, 16), name="A")
    B = te.compute((16, 16), lambda i, j: A[i, j] * 3.0, name="B")
    s = te.create_schedule(B.op)
    yo, yi = s[B].split(s[B].op.axis[0], #P0)
    return s, [A, B]
"""
        plopper = Plopper(mold)
        evaluator = LocalEvaluator(plopper.schedule_builder())
        res = evaluator.evaluate({"P0": 4})
        assert res.ok


class TestSimulatedPaperProtocol:
    def test_lu_large_smoke_matches_paper_shape(self):
        from repro.experiments import run_experiment

        result = run_experiment(
            "lu",
            "large",
            tuners=("ytopt", "AutoTVM-GridSearch"),
            max_evals=20,
            seed=2,
        )
        yt = result.runs["ytopt"]
        gs = result.runs["AutoTVM-GridSearch"]
        assert yt.best_runtime < gs.best_runtime
        assert yt.total_time < gs.total_time

    def test_best_runtimes_land_near_calibration_target(self):
        # With a decent budget ytopt should get within 2x of the calibrated
        # optimum (paper best).
        from repro.experiments import run_tuner

        bench = get_benchmark("cholesky", "large")
        run = run_tuner(bench, "ytopt", max_evals=40, seed=0)
        assert run.best_runtime < 2.0 * 1.65


class TestSolverIntegration:
    def test_tuned_tiles_factorize_correctly(self):
        # Take the swing-tuned best tiles and run the *real* blocked solver.
        from repro.experiments import run_tuner

        bench = get_benchmark("lu", "large")
        run = run_tuner(bench, "ytopt", max_evals=10, seed=0)
        n = 24  # real execution at a test-friendly size
        solver = BlockedLU(n, run.best_config, panel=8)
        a = make_lu_friendly(n, seed=0)
        np.testing.assert_allclose(
            solver(a), lu_reference(a), rtol=1e-9, atol=1e-11
        )
