"""Parallel-measurement integration: determinism, serial/parallel parity,
virtual-clock batch accounting, resume cache hits, fault-tolerant searches,
and wall-clock speedup."""

from __future__ import annotations

import os
import time

import pytest

from repro.common.timing import VirtualClock
from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.kernels.registry import get_benchmark
from repro.experiments.runner import ALL_TUNERS, run_tuner
from repro.runtime import BuildCache, ParallelEvaluator, evaluate_batch
from repro.runtime.measure import FAILED_COST
from repro.swing import SwingEvaluator
from repro.ytopt.problem import TuningProblem
from repro.ytopt.search import AMBS

from tests.runtime.parallel_targets import faulty_20pct_builder, good_builder, slow_builder


def _p0_space(values, seed=0):
    space = ConfigurationSpace(name="p0", seed=seed)
    space.add_hyperparameters([OrdinalHyperparameter("P0", list(values))])
    return space


class TestDeterminism:
    """Same seed + same jobs count => identical best_config, per tuner."""

    @pytest.mark.parametrize("tuner", ALL_TUNERS)
    def test_repeat_run_identical(self, tuner):
        bench = get_benchmark("lu", "mini")
        a = run_tuner(bench, tuner, max_evals=12, seed=3, jobs=4)
        b = run_tuner(bench, tuner, max_evals=12, seed=3, jobs=4)
        assert a.best_config == b.best_config
        assert a.best_runtime == pytest.approx(b.best_runtime)
        assert a.total_time == pytest.approx(b.total_time)

    @pytest.mark.parametrize("tuner", ALL_TUNERS)
    def test_parallel_matches_serial_best(self, tuner):
        """jobs=4 must find the same best config as jobs=1 on a small space —
        parallel measurement changes process time, never the search outcome."""
        bench = get_benchmark("lu", "mini")
        serial = run_tuner(bench, tuner, max_evals=12, seed=0, jobs=1)
        parallel = run_tuner(bench, tuner, max_evals=12, seed=0, jobs=4)
        assert parallel.best_config == serial.best_config
        assert parallel.best_runtime == pytest.approx(serial.best_runtime)
        assert parallel.n_evals == serial.n_evals

    @pytest.mark.parametrize("tuner", ALL_TUNERS)
    def test_parallel_process_time_is_smaller(self, tuner):
        bench = get_benchmark("lu", "mini")
        serial = run_tuner(bench, tuner, max_evals=12, seed=0, jobs=1)
        parallel = run_tuner(bench, tuner, max_evals=12, seed=0, jobs=4)
        assert parallel.total_time < serial.total_time


class TestVirtualClockBatchAccounting:
    """Simulated parallel measurement charges max-of-wave, not sum."""

    def _evaluator(self):
        bench = get_benchmark("lu", "mini")
        return SwingEvaluator(bench.profile, clock=VirtualClock()), bench

    def _configs(self, bench, n):
        space = bench.config_space(seed=0)
        return [dict(space.sample_configuration()) for _ in range(n)]

    def test_batch_advances_by_max_not_sum(self):
        ev_ref, bench = self._evaluator()
        configs = self._configs(bench, 4)
        durations = []
        for cfg in configs:
            before = ev_ref.clock.now
            ev_ref.evaluate(cfg)
            durations.append(ev_ref.clock.now - before)
        assert sum(durations) > max(durations)  # the distinction is real

        ev, _ = self._evaluator()
        results = evaluate_batch(ev, configs, jobs=4)
        assert ev.clock.now == pytest.approx(max(durations))
        assert ev.clock.now < sum(durations)
        for r in results:
            assert r.timestamp == pytest.approx(ev.clock.now)
            assert r.extra["wave_jobs"] == 4.0

    def test_waves_accumulate(self):
        """6 configs at jobs=4 = two waves: max(first 4) + max(last 2)."""
        ev_ref, bench = self._evaluator()
        configs = self._configs(bench, 6)
        durations = []
        for cfg in configs:
            before = ev_ref.clock.now
            ev_ref.evaluate(cfg)
            durations.append(ev_ref.clock.now - before)

        ev, _ = self._evaluator()
        evaluate_batch(ev, configs, jobs=4)
        expected = max(durations[:4]) + max(durations[4:])
        assert ev.clock.now == pytest.approx(expected)

    def test_jobs_one_keeps_sequential_sum(self):
        ev_ref, bench = self._evaluator()
        configs = self._configs(bench, 3)
        for cfg in configs:
            ev_ref.evaluate(cfg)

        ev, _ = self._evaluator()
        evaluate_batch(ev, configs, jobs=1)
        assert ev.clock.now == pytest.approx(ev_ref.clock.now)

    def test_results_match_serial_costs(self):
        ev_ref, bench = self._evaluator()
        configs = self._configs(bench, 4)
        serial = [ev_ref.evaluate(cfg) for cfg in configs]

        ev, _ = self._evaluator()
        parallel = evaluate_batch(ev, configs, jobs=4)
        for s, p in zip(serial, parallel):
            assert p.costs == pytest.approx(s.costs)
            assert p.config == s.config


class TestResumeCacheHits:
    def test_resumed_search_skips_recompilation(self):
        """Acceptance: resume-from-database demonstrates hit rate > 0.

        The first search exhausts a 4-config space; the resumed search must
        re-sample already-seen configurations, whose schedules are already in
        the shared build cache — recompilation is skipped."""
        cache = BuildCache()
        with ParallelEvaluator(good_builder, jobs=2, cache=cache) as ev:
            problem = TuningProblem(_p0_space([1, 2, 3, 4]), ev, name="resume")
            first = AMBS(problem, max_evals=4, seed=0, batch_size=2).run()
            assert first.n_evals == 4
            assert cache.misses >= 1  # the first run actually compiled things

            resumed = AMBS(
                problem,
                max_evals=2,
                seed=1,
                batch_size=2,
                resume_from=first.database,
            ).run()
        assert resumed.n_evals == 6  # 4 carried over + 2 new measurements
        assert cache.hits > 0
        assert cache.hit_rate > 0
        measured = resumed.database.records()[4:]
        assert any(r.ok for r in measured)

    def test_duplicate_in_batch_hits_cache(self):
        with ParallelEvaluator(good_builder, jobs=1) as ev:
            results = ev.evaluate_batch([{"P0": 2}, {"P0": 2}])
        assert results[0].extra["cache_hit"] == 0.0
        assert results[1].extra["cache_hit"] == 1.0


class TestFaultTolerantSearch:
    @pytest.mark.slow
    def test_40_eval_search_with_20pct_faults(self):
        """Acceptance: a 40-eval parallel search over a space where ~20% of
        builds crash the worker or hang completes with zero unhandled
        exceptions, every trial recorded, failures carrying FAILED_COST."""
        space = _p0_space(list(range(1, 21)))  # P0 in 1..20: 4,14 crash; 9,19 hang
        with ParallelEvaluator(
            faulty_20pct_builder,
            jobs=4,
            timeout=0.75,
            parent_grace=2.0,
            max_retries=1,
            retry_backoff=0.0,
        ) as ev:
            problem = TuningProblem(space, ev, name="faulty")
            search = AMBS(problem, max_evals=40, seed=0, batch_size=4)
            result = search.run()  # must not raise
        assert result.n_evals == 40
        records = result.database.records()
        failed = [r for r in records if not r.ok]
        succeeded = [r for r in records if r.ok]
        assert succeeded, "healthy configs must still measure"
        assert failed, "the fault injector must actually have fired"
        assert all(r.runtime == FAILED_COST for r in failed)
        assert result.best_runtime < FAILED_COST


class TestWallClockSpeedup:
    @pytest.mark.slow
    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2, reason="speedup needs at least 2 cores"
    )
    def test_parallel_search_beats_serial(self):
        """Acceptance: a 40-eval search at jobs=4 takes < 0.6x the serial
        wall-clock. The builder carries a fixed per-build cost, so the ratio
        measures measurement overlap, not BO internals."""
        space_vals = [1, 2, 3, 4, 6, 12]

        def run(jobs: int) -> float:
            with ParallelEvaluator(slow_builder, jobs=jobs, use_cache=False) as ev:
                problem = TuningProblem(_p0_space(space_vals), ev, name="speed")
                search = AMBS(
                    problem,
                    max_evals=40,
                    seed=0,
                    batch_size=jobs,
                    optimizer_overhead=0.0,
                )
                t0 = time.perf_counter()
                result = search.run()
                elapsed = time.perf_counter() - t0
            assert result.n_evals == 40
            return elapsed

        serial = run(1)
        parallel = run(4)
        assert parallel < 0.6 * serial, (
            f"jobs=4 took {parallel:.2f}s vs jobs=1 {serial:.2f}s "
            f"(ratio {parallel / serial:.2f}, need < 0.6)"
        )
