"""Failure injection: every tuner must survive flaky and hostile evaluators.

Real measurement pipelines fail constantly (compile errors, timeouts, crashed
runners); AutoTVM and ytopt both record failures and keep searching. These
tests wrap the Swing evaluator with deterministic fault injection and assert
the searches complete, record the failures, and still find good configs.
"""

from collections.abc import Mapping

import pytest

from repro.autotvm import (
    GATuner,
    Measurer,
    RandomTuner,
    XGBTuner,
    measure_option,
    task_from_benchmark,
)
from repro.common.errors import TuningError
from repro.common.rng import stable_hash01
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.runtime.measure import Evaluator, MeasureResult
from repro.swing import SwingEvaluator
from repro.ytopt import AMBS, TuningProblem


class FlakyEvaluator(Evaluator):
    """Deterministically fails a fraction of evaluations (keyed on config)."""

    def __init__(self, inner: Evaluator, failure_rate: float = 0.3) -> None:
        self.inner = inner
        self.failure_rate = failure_rate
        self.clock = getattr(inner, "clock", None)
        self.n_failures = 0

    def evaluate(self, params: Mapping[str, int]) -> MeasureResult:
        result = self.inner.evaluate(params)
        if stable_hash01("flaky", sorted(params.items())) < self.failure_rate:
            self.n_failures += 1
            return MeasureResult(
                config=result.config,
                costs=(),
                compile_time=result.compile_time,
                timestamp=result.timestamp,
                error="injected runner crash",
            )
        return result

    def elapsed(self) -> float:
        return self.inner.elapsed()


def _flaky_setup(rate=0.3, kernel="cholesky", size="large"):
    bench = get_benchmark(kernel, size)
    inner = SwingEvaluator(bench.profile, clock=VirtualClock())
    return bench, FlakyEvaluator(inner, failure_rate=rate)


class TestAutoTVMUnderFailures:
    @pytest.mark.parametrize("tuner_cls", [RandomTuner, GATuner, XGBTuner])
    def test_tuner_survives_and_finds_config(self, tuner_cls):
        bench, flaky = _flaky_setup()
        task = task_from_benchmark(bench, flaky)
        tuner = tuner_cls(task, seed=0)
        records = tuner.tune(
            n_trial=40,
            measurer=Measurer(flaky, measure_option(number=1, batch_overhead=0.0)),
        )
        assert len(records) == 40
        assert flaky.n_failures > 0, "fault injection never triggered"
        failed = [r for r in records if not r.ok]
        assert len(failed) == flaky.n_failures
        _, best = tuner.best()  # a successful config was still found
        assert best < 1e9

    def test_all_failures_still_completes(self):
        bench, flaky = _flaky_setup(rate=1.0)
        task = task_from_benchmark(bench, flaky)
        tuner = RandomTuner(task, seed=0)
        records = tuner.tune(
            n_trial=10,
            measurer=Measurer(flaky, measure_option(number=1, batch_overhead=0.0)),
        )
        assert len(records) == 10
        with pytest.raises(TuningError):
            tuner.best()


class TestYtoptUnderFailures:
    def test_bo_survives_failures(self):
        bench, flaky = _flaky_setup()
        problem = TuningProblem(bench.config_space(seed=0), flaky)
        result = AMBS(problem, max_evals=30, seed=0).run()
        assert result.n_evals == 30
        assert flaky.n_failures > 0
        assert result.best_runtime < 1e9
        # Failures appear in the database with the sentinel cost.
        failed = [r for r in result.database if not r.ok]
        assert len(failed) == flaky.n_failures

    def test_failures_do_not_poison_search(self):
        # With failures injected, the search must still land within 2x of a
        # failure-free run's best.
        bench, flaky = _flaky_setup(rate=0.25)
        flaky_best = AMBS(
            TuningProblem(bench.config_space(seed=1), flaky), max_evals=40, seed=1
        ).run().best_runtime

        clean = SwingEvaluator(bench.profile, clock=VirtualClock())
        clean_best = AMBS(
            TuningProblem(bench.config_space(seed=1), clean), max_evals=40, seed=1
        ).run().best_runtime
        assert flaky_best <= 2.0 * clean_best


class TestBatchMode:
    def test_ambs_batch_equivalent_coverage(self):
        bench = get_benchmark("lu", "large")
        ev = SwingEvaluator(bench.profile, clock=VirtualClock())
        result = AMBS(
            TuningProblem(bench.config_space(seed=0), ev),
            max_evals=24,
            seed=0,
            batch_size=8,
        ).run()
        assert result.n_evals == 24
        # No duplicate evaluations despite batching.
        keys = {tuple(sorted(r.config.items())) for r in result.database}
        assert len(keys) == 24

    def test_batch_size_validation(self):
        bench = get_benchmark("lu", "large")
        ev = SwingEvaluator(bench.profile, clock=VirtualClock())
        with pytest.raises(TuningError):
            AMBS(
                TuningProblem(bench.config_space(seed=0), ev),
                max_evals=5,
                batch_size=0,
            )
