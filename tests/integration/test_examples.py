"""Smoke tests: the shipped example scripts must actually run.

Each example is executed in a subprocess with a reduced workload (where the
script accepts parameters) so the whole module stays under a minute. The
heavyweight model-tuning examples (MLP/CNN) are exercised through their
library entry points elsewhere (tests/relay) and only import-checked here.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr[-2000:]}"
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "Best tiles" in out

    def test_custom_kernel_codemold(self):
        out = _run("custom_kernel_codemold.py")
        assert "Instantiated mold line" in out

    def test_blocked_solvers_small(self):
        out = _run("blocked_solvers.py", "32")
        assert "Cholesky decomposition" in out
        assert "max|err|" in out

    def test_reproduce_paper_experiment_reduced(self):
        out = _run("reproduce_paper_experiment.py", "lu", "large", "12")
        assert "Minimum runtimes" in out
        assert "Paper reported" in out

    def test_tune_3mm_reduced(self):
        out = _run("tune_3mm_swing.py", "15")
        assert "228,614,400" in out
        assert "true optimum" in out

    def test_tune_for_energy_reduced(self):
        out = _run("tune_for_energy.py", "12")
        assert "energy (J)" in out

    @pytest.mark.parametrize(
        "script", ["tune_mlp_model.py", "tune_cnn_model.py"]
    )
    def test_model_tuning_examples_compile(self, script):
        # Heavy examples: verify they at least parse and import cleanly.
        source = (EXAMPLES / script).read_text()
        compile(source, script, "exec")
