"""Smoke tests for the perf-regression harness and its CI gate.

The full harness run is exercised by CI's perf-smoke job; here we keep the
pieces importable and correct — one tiny timed case, the tier-coverage
probe, and the ``bench_to_json.check`` regression logic on synthetic
documents (no timing involved, so the assertions are exact).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
for sub in ("benchmarks", "scripts"):
    p = str(REPO_ROOT / sub)
    if p not in sys.path:
        sys.path.insert(0, p)

import bench_backend_tiers  # noqa: E402
import bench_to_json  # noqa: E402


class TestHarness:
    def test_bench_case_reports_all_tiers(self):
        from repro.kernels.extra import gemm_tuned

        sched, args = gemm_tuned(12, 10, 8, {"P0": 4, "P1": 4})
        out = bench_backend_tiers.bench_case(
            "gemm-tiny", sched, args, ("tensor", "codegen", "interp"), repeats=1
        )
        assert set(out["tiers"]) == {"tensor", "codegen", "interp"}
        assert out["tiers"]["tensor"]["selected"] == "tensor"
        assert out["speedup_tensor_vs_interp"] > 0
        assert out["speedup_tensor_vs_codegen"] > 0

    def test_tier_coverage_covers_all_registered(self):
        from repro.kernels.registry import list_benchmarks

        cov = bench_backend_tiers.tier_coverage()
        assert set(cov["selected"]) == {f"{k}/{s}" for k, s in list_benchmarks()}
        assert 0.0 <= cov["coverage"] <= 1.0
        assert 0.0 <= cov["tensor_fraction"] <= cov["coverage"]

    def test_default_config_is_legal(self):
        from repro.kernels.registry import get_benchmark

        bench = get_benchmark("lu", "large")
        cfg = bench_backend_tiers.default_config(bench)
        assert set(cfg) == set(bench.params)
        for p, v in cfg.items():
            assert v in bench.candidates[p]


def _baseline_doc():
    return {
        "cases": [
            {
                "name": "gemm-48",
                "speedup_tensor_vs_interp": 100.0,
                "speedup_tensor_vs_codegen": 10.0,
            }
        ],
        "coverage": {"coverage": 1.0, "tensor_fraction": 1.0},
    }


def _fresh_doc(interp=100.0, codegen=10.0, coverage=1.0):
    doc = _baseline_doc()
    doc["cases"][0]["speedup_tensor_vs_interp"] = interp
    doc["cases"][0]["speedup_tensor_vs_codegen"] = codegen
    doc["coverage"]["coverage"] = coverage
    doc["coverage"]["tensor_fraction"] = coverage
    return doc


class TestCheckGate:
    @pytest.fixture
    def baseline(self, tmp_path, monkeypatch):
        path = tmp_path / "BENCH_compiler.json"
        path.write_text(json.dumps(_baseline_doc()))
        monkeypatch.setattr(bench_to_json, "COMPILER_JSON", path)
        return path

    SEARCH_OK = {"batch_sampling_speedup": 4.0}

    def test_passes_at_parity(self, baseline):
        assert bench_to_json.check(_fresh_doc(), self.SEARCH_OK) == []

    def test_passes_within_floor(self, baseline):
        # 20% slower than baseline is exactly the allowed floor.
        assert bench_to_json.check(_fresh_doc(interp=80.0), self.SEARCH_OK) == []

    def test_fails_below_floor(self, baseline):
        failures = bench_to_json.check(_fresh_doc(interp=79.0), self.SEARCH_OK)
        assert any("speedup_tensor_vs_interp regressed" in f for f in failures)

    def test_fails_on_coverage_drop(self, baseline):
        failures = bench_to_json.check(_fresh_doc(coverage=0.5), self.SEARCH_OK)
        assert any("coverage dropped" in f for f in failures)

    def test_fails_on_missing_case(self, baseline):
        doc = _fresh_doc()
        doc["cases"] = []
        failures = bench_to_json.check(doc, self.SEARCH_OK)
        assert any("present in baseline" in f for f in failures)

    def test_fails_when_batching_loses(self, baseline):
        failures = bench_to_json.check(
            _fresh_doc(), {"batch_sampling_speedup": 0.9}
        )
        assert any("batch sampling slower" in f for f in failures)

    def test_missing_baseline_reported(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench_to_json, "COMPILER_JSON", tmp_path / "nope.json"
        )
        failures = bench_to_json.check(_fresh_doc(), self.SEARCH_OK)
        assert failures and "missing baseline" in failures[0]
