"""Tests for schedule primitives (split/fuse/reorder/tile/annotations)."""

import pytest

import repro.te as te
from repro.common.errors import ScheduleError
from tests.conftest import make_matmul


class TestCreateSchedule:
    def test_single_op(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        assert len(s.stages) == 1
        assert s[C].op is C.op

    def test_multi_stage_topo_order(self):
        A = te.placeholder((4, 4), name="A")
        B = te.compute((4, 4), lambda i, j: A[i, j] + 1.0, name="B")
        C = te.compute((4, 4), lambda i, j: B[i, j] * 2.0, name="C")
        s = te.create_schedule(C.op)
        assert [st.op.name for st in s.stages] == ["B", "C"]

    def test_lookup_by_tensor_or_op(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        assert s[C] is s[C.op]

    def test_unknown_op_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        _, _, other = make_matmul()
        with pytest.raises(ScheduleError):
            s[other]

    def test_tensor_instead_of_op_rejected(self, matmul):
        _, _, C = matmul
        with pytest.raises(ScheduleError):
            te.create_schedule(C)  # must pass C.op

    def test_empty_rejected(self):
        with pytest.raises(ScheduleError):
            te.create_schedule([])


class TestSplit:
    def test_divisible_split(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y = s[C].op.axis[0]  # extent 12
        yo, yi = s[C].split(y, factor=4)
        assert yo.extent == 3 and yi.extent == 4
        assert [iv.name for iv in s[C].leaf_iter_vars[:2]] == ["i.outer", "i.inner"]

    def test_non_divisible_split_ceils(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        yo, yi = s[C].split(s[C].op.axis[0], factor=5)  # 12/5
        assert yo.extent == 3 and yi.extent == 5

    def test_nparts(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        yo, yi = s[C].split(s[C].op.axis[0], nparts=3)
        assert yo.extent == 3 and yi.extent == 4

    def test_split_reduce_axis(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        k = s[C].op.reduce_axis[0]
        ko, ki = s[C].split(k, factor=2)
        assert ko.is_reduce() and ki.is_reduce()

    def test_both_factor_and_nparts_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        with pytest.raises(ScheduleError):
            s[C].split(s[C].op.axis[0], factor=2, nparts=2)

    def test_neither_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        with pytest.raises(ScheduleError):
            s[C].split(s[C].op.axis[0])

    def test_bad_factor_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        with pytest.raises(ScheduleError):
            s[C].split(s[C].op.axis[0], factor=0)

    def test_resplit_consumed_axis_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y = s[C].op.axis[0]
        s[C].split(y, factor=4)
        with pytest.raises(ScheduleError):
            s[C].split(y, factor=2)  # y is no longer a leaf

    def test_chained_split(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        yo, yi = s[C].split(s[C].op.axis[0], factor=6)
        yio, yii = s[C].split(yi, factor=2)
        assert yio.extent == 3 and yii.extent == 2
        assert len(s[C].leaf_iter_vars) == 5  # yo,yio,yii,x,k


class TestFuse:
    def test_fuse_adjacent(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        fused = s[C].fuse(y, x)
        assert fused.extent == 120
        assert s[C].leaf_iter_vars[0] is fused

    def test_fuse_non_adjacent_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        k = s[C].op.reduce_axis[0]
        with pytest.raises(ScheduleError):
            s[C].fuse(y, k)  # x sits in between

    def test_fuse_wrong_order_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        with pytest.raises(ScheduleError):
            s[C].fuse(x, y)

    def test_fuse_mixed_kinds_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        x = s[C].op.axis[1]
        k = s[C].op.reduce_axis[0]
        with pytest.raises(ScheduleError):
            s[C].fuse(x, k)


class TestReorder:
    def test_paper_reorder(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        k = s[C].op.reduce_axis[0]
        yo, yi = s[C].split(y, 4)
        xo, xi = s[C].split(x, 5)
        s[C].reorder(yo, xo, k, yi, xi)
        assert s[C].leaf_iter_vars == [yo, xo, k, yi, xi]

    def test_partial_reorder_keeps_others(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        k = s[C].op.reduce_axis[0]
        s[C].reorder(x, y)  # swap first two slots, k untouched
        assert s[C].leaf_iter_vars == [x, y, k]

    def test_duplicate_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y = s[C].op.axis[0]
        with pytest.raises(ScheduleError):
            s[C].reorder(y, y)

    def test_non_leaf_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y = s[C].op.axis[0]
        s[C].split(y, 4)
        with pytest.raises(ScheduleError):
            s[C].reorder(y)


class TestTile:
    def test_tile_shape(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        xo, yo, xi, yi = s[C].tile(x, y, x_factor=5, y_factor=4)
        assert [iv.name for iv in s[C].leaf_iter_vars[:4]] == [
            "j.outer", "i.outer", "j.inner", "i.inner",
        ]


class TestAnnotations:
    def test_unroll_vectorize_parallel(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        yo, yi = s[C].split(y, 4)
        s[C].parallel(yo)
        s[C].unroll(yi)
        s[C].vectorize(x)
        assert s[C].iter_var_attrs[yo] == "parallel"
        assert s[C].iter_var_attrs[yi] == "unroll"
        assert s[C].iter_var_attrs[x] == "vectorize"

    def test_double_annotation_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        x = s[C].op.axis[1]
        s[C].vectorize(x)
        with pytest.raises(ScheduleError):
            s[C].unroll(x)

    def test_vectorize_reduce_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        with pytest.raises(ScheduleError):
            s[C].vectorize(s[C].op.reduce_axis[0])

    def test_parallel_reduce_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        with pytest.raises(ScheduleError):
            s[C].parallel(s[C].op.reduce_axis[0])

    def test_annotated_axis_cannot_split(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y = s[C].op.axis[0]
        s[C].unroll(y)
        with pytest.raises(ScheduleError):
            s[C].split(y, factor=2)

    def test_bind_thread_axis(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y = s[C].op.axis[0]
        bx = te.thread_axis(tag="blockIdx.x")
        s[C].bind(y, bx)
        assert s[C].binds[y] is bx

    def test_bind_to_non_thread_rejected(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        with pytest.raises(ScheduleError):
            s[C].bind(y, x)

    def test_pragma_recorded(self, matmul):
        _, _, C = matmul
        s = te.create_schedule(C.op)
        y = s[C].op.axis[0]
        s[C].pragma(y, "auto_unroll_max_step", 16)
        assert s[C].pragmas[y]["auto_unroll_max_step"] == 16
