"""Tests for the TE expression AST."""

import pytest

import repro.te as te
from repro.common.errors import ReproError
from repro.te.expr import (
    Add,
    Cast,
    Div,
    EQ,
    FloatImm,
    FloorDiv,
    IntImm,
    LT,
    Mul,
    Select,
    Sub,
    Var,
    all_vars,
    const,
    max_value,
    min_value,
    post_order_visit,
    structural_equal,
    substitute,
)


class TestConst:
    def test_int_default_dtype(self):
        c = const(5)
        assert isinstance(c, IntImm) and c.dtype == "int32" and c.value == 5

    def test_float_default_dtype(self):
        c = const(2.5)
        assert isinstance(c, FloatImm) and c.dtype == "float32"

    def test_bool_dtype(self):
        assert const(True).dtype == "bool"

    def test_explicit_dtype(self):
        assert const(1, "float64").dtype == "float64"

    def test_invalid_dtype_rejected(self):
        with pytest.raises(ReproError):
            const(1, "complex128")

    def test_min_max_value_float(self):
        assert min_value("float32").value == float("-inf")
        assert max_value("float64").value == float("inf")

    def test_min_max_value_int(self):
        assert min_value("int32").value == -(2**31)
        assert max_value("int32").value == 2**31 - 1


class TestOperatorOverloading:
    def test_add_builds_node(self):
        v = Var("x")
        e = v + 1
        assert isinstance(e, Add)
        assert e.a is v and isinstance(e.b, IntImm)

    def test_radd(self):
        e = 1 + Var("x")
        assert isinstance(e, Add) and isinstance(e.a, IntImm)

    def test_sub_mul(self):
        v = Var("x")
        assert isinstance(v - 1, Sub)
        assert isinstance(2 * v, Mul)

    def test_truediv_promotes_to_float(self):
        e = Var("x") / Var("y")
        assert isinstance(e, Div)
        assert e.dtype == "float32"

    def test_floordiv_stays_int(self):
        e = Var("x") // 2
        assert isinstance(e, FloorDiv) and e.dtype == "int32"

    def test_neg(self):
        e = -Var("x")
        assert isinstance(e, Sub)

    def test_comparison_builds_node_not_bool(self):
        e = Var("x") == Var("y")
        assert isinstance(e, EQ) and e.dtype == "bool"

    def test_lt_dtype_bool(self):
        assert isinstance(Var("x") < 3, LT)

    def test_bool_context_raises(self):
        with pytest.raises(TypeError):
            bool(Var("x") + 1)

    def test_dtype_promotion(self):
        e = const(1, "int32") + const(1.0, "float64")
        assert e.dtype == "float64"

    def test_float32_int_promotion(self):
        e = const(1.0, "float32") * const(2, "int32")
        assert e.dtype == "float32"


class TestIntrinsics:
    def test_sqrt(self):
        c = te.sqrt(const(4.0))
        assert c.op == "sqrt" and c.dtype == "float32"

    def test_unknown_intrinsic_rejected(self):
        from repro.te.expr import Call

        with pytest.raises(ReproError):
            Call("fma", (const(1.0),))

    def test_if_then_else(self):
        e = te.if_then_else(Var("x") < 1, 1.0, 2.0)
        assert isinstance(e, Select)


class TestVisitorsAndSubstitution:
    def test_post_order_visits_children_first(self):
        x, y = Var("x"), Var("y")
        order = []
        post_order_visit(x + y, lambda e: order.append(e))
        assert order[0] is x and order[1] is y
        assert isinstance(order[2], Add)

    def test_all_vars_dedup(self):
        x, y = Var("x"), Var("y")
        vs = all_vars(x * y + x)
        assert vs == [x, y]

    def test_substitute_replaces(self):
        x, y = Var("x"), Var("y")
        e = substitute(x + 1, {x: y})
        assert isinstance(e, Add) and e.a is y

    def test_substitute_untouched_reuses_node(self):
        x, y = Var("x"), Var("y")
        e = x + 1
        assert substitute(e, {y: x}) is e

    def test_substitute_nested(self):
        x, y = Var("x"), Var("y")
        e = substitute((x + 1) * (x + 2), {x: y})
        assert structural_equal(e, (y + 1) * (y + 2))

    def test_substitute_producer_load(self, matmul):
        A, _, _ = matmul
        i, j = Var("i"), Var("j")
        e = substitute(A[i, j], {i: const(0)})
        assert isinstance(e.indices[0], IntImm)

    def test_rebuild_with_leaf_rejects_children(self):
        with pytest.raises(ReproError):
            Var("x").rebuild_with((const(1),))


class TestStructuralEqual:
    def test_same_structure(self):
        x = Var("x")
        assert structural_equal(x + 1, x + 1)

    def test_different_var_identity(self):
        assert not structural_equal(Var("x") + 1, Var("x") + 1)

    def test_different_op(self):
        x = Var("x")
        assert not structural_equal(x + 1, x - 1)

    def test_different_const(self):
        x = Var("x")
        assert not structural_equal(x + 1, x + 2)

    def test_cast(self):
        x = Var("x")
        assert structural_equal(Cast(x, "float64"), Cast(x, "float64"))
        assert not structural_equal(Cast(x, "float64"), Cast(x, "float32"))

    def test_tensor_loads(self, matmul):
        A, B, _ = matmul
        i, j = Var("i"), Var("j")
        assert structural_equal(A[i, j], A[i, j])
        assert not structural_equal(A[i, j], B[i, j])

    def test_expr_hash_is_identity(self):
        x = Var("x")
        e1, e2 = x + 1, x + 1
        assert hash(e1) != hash(e2) or e1 is e2
