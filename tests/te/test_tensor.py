"""Tests for tensors and operations (placeholder/compute/reduce_axis)."""

import pytest

import repro.te as te
from repro.common.errors import ReproError
from repro.te.expr import ProducerLoad, Reduce
from repro.te.tensor import ComputeOp, IterVar, PlaceholderOp, Range


class TestRange:
    def test_positive_extent(self):
        r = Range(0, 5)
        assert r.min == 0 and r.extent == 5

    def test_zero_extent_rejected(self):
        with pytest.raises(ReproError):
            Range(0, 0)

    def test_equality(self):
        assert Range(0, 4) == Range(0, 4)
        assert Range(0, 4) != Range(1, 4)


class TestPlaceholder:
    def test_basic(self):
        A = te.placeholder((3, 4), name="A")
        assert A.shape == (3, 4)
        assert A.dtype == "float32"
        assert isinstance(A.op, PlaceholderOp)

    def test_dtype(self):
        assert te.placeholder((2,), dtype="float64").dtype == "float64"

    def test_invalid_dtype(self):
        with pytest.raises(ReproError):
            te.placeholder((2,), dtype="complex64")

    def test_nonpositive_dim_rejected(self):
        with pytest.raises(ReproError):
            te.placeholder((3, 0))

    def test_indexing_builds_load(self):
        A = te.placeholder((3, 4), name="A")
        load = A[1, 2]
        assert isinstance(load, ProducerLoad)
        assert load.tensor is A

    def test_wrong_arity_indexing(self):
        A = te.placeholder((3, 4))
        with pytest.raises(ReproError):
            A[1]

    def test_invalid_index_type(self):
        A = te.placeholder((3,))
        with pytest.raises(ReproError):
            A["x"]


class TestReduceAxis:
    def test_domain(self):
        k = te.reduce_axis((2, 10), name="k")
        assert k.dom.min == 2 and k.extent == 8
        assert k.is_reduce()

    def test_thread_axis(self):
        t = te.thread_axis(32, "threadIdx.x")
        assert t.kind == "thread" and t.thread_tag == "threadIdx.x"

    def test_thread_axis_requires_tag(self):
        with pytest.raises(ReproError):
            te.thread_axis(32, "")


class TestCompute:
    def test_elementwise(self):
        A = te.placeholder((4, 5), name="A")
        B = te.compute((4, 5), lambda i, j: A[i, j] * 2.0, name="B")
        assert B.shape == (4, 5)
        assert isinstance(B.op, ComputeOp)
        assert len(B.op.axis) == 2
        assert B.op.reduce_axis == ()

    def test_axis_names_from_lambda(self):
        C = te.compute((2, 3), lambda row, col: row + col, name="C")
        assert [iv.name for iv in C.op.axis] == ["row", "col"]

    def test_reduction(self, matmul):
        _, _, C = matmul
        assert isinstance(C.op.body, Reduce)
        assert len(C.op.reduce_axis) == 1

    def test_arity_mismatch_rejected(self):
        with pytest.raises(ReproError):
            te.compute((2, 3), lambda i: i)

    def test_scalar_body_wrapped(self):
        C = te.compute((2,), lambda i: 1.0, name="ones")
        assert C.dtype == "float32"

    def test_nested_reduce_rejected(self):
        A = te.placeholder((4, 4))
        k1 = te.reduce_axis((0, 4), "k1")
        k2 = te.reduce_axis((0, 4), "k2")
        with pytest.raises(ReproError):
            te.compute(
                (4,),
                lambda i: te.sum(te.sum(A[i, k1], axis=k1) * 1.0, axis=k2),
            )

    def test_sum_requires_reduce_axis(self):
        A = te.placeholder((4,))
        data_iv = IterVar(Range(0, 4), te.Var("i"), "data_par")
        with pytest.raises(ReproError):
            te.sum(A[data_iv.var], axis=data_iv)

    def test_multi_axis_reduction(self):
        A = te.placeholder((3, 4, 5), name="A")
        k1 = te.reduce_axis((0, 4), "k1")
        k2 = te.reduce_axis((0, 5), "k2")
        C = te.compute((3,), lambda i: te.sum(A[i, k1, k2], axis=[k1, k2]))
        assert len(C.op.reduce_axis) == 2

    def test_input_tensors(self, matmul):
        A, B, C = matmul
        inputs = C.op.input_tensors()
        assert set(id(t) for t in inputs) == {id(A), id(B)}

    def test_max_min_reduce_identities(self):
        A = te.placeholder((4,), dtype="float64")
        k = te.reduce_axis((0, 4), "k")
        assert te.max_reduce(A[k], k).identity.value == float("-inf")
        k2 = te.reduce_axis((0, 4), "k2")
        assert te.min_reduce(A[k2], k2).identity.value == float("inf")
