"""Tests for the spec-based model importer."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.relay import build_function, from_spec
from repro.relay.transform import _np_conv2d, _np_max_pool2d


@pytest.fixture
def cnn_spec_and_params():
    rng = np.random.default_rng(0)
    spec = {
        "input": {"name": "x", "shape": [2, 1, 8, 8]},
        "layers": [
            {"op": "conv2d", "weight": "w1", "bias": "b1", "padding": 1},
            {"op": "relu"},
            {"op": "max_pool2d", "pool_size": 2},
            {"op": "flatten"},
            {"op": "dense", "weight": "w2", "bias": "b2"},
            {"op": "softmax"},
        ],
    }
    params = {
        "w1": rng.standard_normal((3, 1, 3, 3)) * 0.3,
        "b1": rng.standard_normal(3) * 0.3,
        "w2": rng.standard_normal((5, 3 * 4 * 4)) * 0.3,
        "b2": rng.standard_normal(5) * 0.3,
    }
    return spec, params


class TestFromSpec:
    def test_imports_and_runs(self, cnn_spec_and_params):
        spec, params = cnn_spec_and_params
        func = from_spec(spec, params)
        assert func.body.shape == (2, 5)
        rng = np.random.default_rng(1)
        xv = rng.standard_normal((2, 1, 8, 8))
        out = build_function(func).run(x=xv)

        conv = _np_conv2d(xv, params["w1"], 1, 1) + params["b1"].reshape(1, 3, 1, 1)
        pooled = _np_max_pool2d(np.maximum(conv, 0), 2, 2).reshape(2, -1)
        logits = pooled @ params["w2"].T + params["b2"]
        e = np.exp(logits - logits.max(axis=-1, keepdims=True))
        ref = e / e.sum(axis=-1, keepdims=True)
        np.testing.assert_allclose(out, ref, rtol=1e-10)

    def test_spec_is_json_roundtrippable(self, cnn_spec_and_params):
        import json

        spec, params = cnn_spec_and_params
        func = from_spec(json.loads(json.dumps(spec)), params)
        assert func.body.op == "softmax"

    def test_missing_weight_rejected(self, cnn_spec_and_params):
        spec, params = cnn_spec_and_params
        del params["w2"]
        with pytest.raises(ReproError, match="missing weight"):
            from_spec(spec, params)

    def test_unknown_op_rejected(self, cnn_spec_and_params):
        spec, params = cnn_spec_and_params
        spec["layers"].append({"op": "gelu"})
        with pytest.raises(ReproError, match="unknown op"):
            from_spec(spec, params)

    def test_malformed_spec_rejected(self):
        with pytest.raises(ReproError):
            from_spec({"layers": []}, {})

    def test_shape_errors_surface_at_import(self, cnn_spec_and_params):
        spec, params = cnn_spec_and_params
        params["w2"] = np.zeros((5, 7))  # wrong in_features
        with pytest.raises(ReproError):
            from_spec(spec, params)

    def test_imported_model_is_tunable(self, cnn_spec_and_params):
        from repro.relay import tune_function

        spec, params = cnn_spec_and_params
        func = from_spec(spec, params)
        tuned = tune_function(func, max_evals_per_group=4, seed=0)
        assert len(tuned.per_group) == 2  # one conv group + one dense group
