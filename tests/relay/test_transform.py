"""Tests for graph passes: shape inference, constant folding, FuseOps."""

import numpy as np
import pytest

from repro import relay
from repro.common.errors import ReproError
from repro.relay import fold_constants, fuse_ops, infer_shapes


def _mlp(batch=4, in_f=8, hidden=6, out_f=3, seed=0):
    rng = np.random.default_rng(seed)
    x = relay.var("x", (batch, in_f))
    w1 = relay.const(rng.standard_normal((hidden, in_f)), "w1")
    b1 = relay.const(rng.standard_normal(hidden), "b1")
    w2 = relay.const(rng.standard_normal((out_f, hidden)), "w2")
    h = relay.relu(relay.bias_add(relay.dense(x, w1), b1))
    out = relay.softmax(relay.dense(h, w2))
    return relay.Function([x], out)


class TestInferShapes:
    def test_mlp_shapes(self):
        f = _mlp()
        infer_shapes(f)
        shapes = {n.name: n.shape for n in f.nodes()}
        assert shapes["x"] == (4, 8)
        assert f.body.shape == (4, 3)

    def test_dense_mismatch_rejected(self):
        x = relay.var("x", (2, 5))
        w = relay.const(np.ones((3, 4)))  # in_features 4 != 5
        f = relay.Function([x], relay.dense(x, w))
        with pytest.raises(ReproError):
            infer_shapes(f)

    def test_bias_mismatch_rejected(self):
        x = relay.var("x", (2, 5))
        b = relay.const(np.ones(4))
        f = relay.Function([x], relay.bias_add(x, b))
        with pytest.raises(ReproError):
            infer_shapes(f)

    def test_add_shape_mismatch_rejected(self):
        x = relay.var("x", (2, 3))
        y = relay.var("y", (3, 2))
        f = relay.Function([x, y], relay.add(x, y))
        with pytest.raises(ReproError):
            infer_shapes(f)

    def test_flatten_shape(self):
        x = relay.var("x", (2, 3, 4))
        f = relay.Function([x], relay.flatten(x))
        infer_shapes(f)
        assert f.body.shape == (2, 12)


class TestFoldConstants:
    def test_const_subgraph_folded(self):
        c1 = relay.const(np.full((2, 2), 3.0))
        c2 = relay.const(np.full((2, 2), 4.0))
        f = relay.Function([], relay.add(c1, c2))
        infer_shapes(f)
        folded = fold_constants(f)
        assert folded.body.op == "const"
        np.testing.assert_array_equal(folded.body.value, 7.0)

    def test_var_dependent_not_folded(self):
        x = relay.var("x", (2, 2))
        c = relay.const(np.ones((2, 2)))
        f = relay.Function([x], relay.add(x, c))
        infer_shapes(f)
        folded = fold_constants(f)
        assert folded.body.op == "add"

    def test_partial_folding(self):
        x = relay.var("x", (2, 2))
        c1 = relay.const(np.ones((2, 2)))
        c2 = relay.const(np.ones((2, 2)))
        pre = relay.add(c1, c2)  # foldable
        f = relay.Function([x], relay.add(x, pre))
        infer_shapes(f)
        folded = fold_constants(f)
        const_input = folded.body.inputs[1]
        assert const_input.op == "const"
        np.testing.assert_array_equal(const_input.value, 2.0)

    def test_folding_preserves_semantics(self):
        f = _mlp()
        infer_shapes(f)
        folded = fold_constants(f)
        from repro.relay import build_function

        rng = np.random.default_rng(1)
        xv = rng.standard_normal((4, 8))
        np.testing.assert_allclose(
            build_function(f).run(x=xv),
            build_function(folded).run(x=xv),
            rtol=1e-12,
        )


class TestFuseOps:
    def test_dense_absorbs_epilogue(self):
        f = _mlp()
        groups = fuse_ops(f)
        kinds = [
            (g.anchor.op, [e.op for e in g.epilogue], g.is_tunable) for g in groups
        ]
        assert kinds[0] == ("dense", ["bias_add", "relu"], True)
        assert kinds[1] == ("dense", [], True)  # followed by softmax (not fusable)
        assert kinds[2] == ("softmax", [], False)

    def test_multi_consumer_blocks_fusion(self):
        x = relay.var("x", (2, 4))
        w = relay.const(np.ones((4, 4)))
        d = relay.dense(x, w)
        out = relay.add(relay.relu(d), d)  # d has two consumers
        f = relay.Function([x], out)
        groups = fuse_ops(f)
        dense_group = next(g for g in groups if g.anchor.op == "dense")
        assert dense_group.epilogue == []

    def test_every_op_in_exactly_one_group(self):
        f = _mlp()
        groups = fuse_ops(f)
        names = [n.name for g in groups for n in g.nodes]
        compute_nodes = [n.name for n in f.nodes() if n.op not in ("var", "const")]
        assert sorted(names) == sorted(compute_nodes)

    def test_external_inputs(self):
        f = _mlp()
        groups = fuse_ops(f)
        first = groups[0]
        ext_ops = [n.op for n in first.external_inputs()]
        assert ext_ops == ["var", "const", "const"]  # x, w1, b1
