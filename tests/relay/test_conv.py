"""Tests for conv2d / max_pool2d: shapes, folding, lowering, tuning."""

import numpy as np
import pytest

from repro import relay
from repro.common.errors import ReproError
from repro.relay import build_function, fuse_ops, infer_shapes, tune_function
from repro.relay.transform import _np_conv2d, _np_max_pool2d, fold_constants


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestShapes:
    def test_conv_output_shape(self):
        x = relay.var("x", (2, 3, 16, 16))
        w = relay.const(np.zeros((8, 3, 3, 3)))
        f = relay.Function([x], relay.conv2d(x, w, strides=1, padding=1))
        infer_shapes(f)
        assert f.body.shape == (2, 8, 16, 16)

    def test_strided_no_pad(self):
        x = relay.var("x", (1, 1, 9, 9))
        w = relay.const(np.zeros((4, 1, 3, 3)))
        f = relay.Function([x], relay.conv2d(x, w, strides=2))
        infer_shapes(f)
        assert f.body.shape == (1, 4, 4, 4)

    def test_channel_mismatch_rejected(self):
        x = relay.var("x", (1, 3, 8, 8))
        w = relay.const(np.zeros((4, 2, 3, 3)))
        f = relay.Function([x], relay.conv2d(x, w))
        with pytest.raises(ReproError):
            infer_shapes(f)

    def test_kernel_too_large_rejected(self):
        x = relay.var("x", (1, 1, 4, 4))
        w = relay.const(np.zeros((1, 1, 7, 7)))
        f = relay.Function([x], relay.conv2d(x, w))
        with pytest.raises(ReproError):
            infer_shapes(f)

    def test_pool_shape(self):
        x = relay.var("x", (2, 4, 8, 8))
        f = relay.Function([x], relay.max_pool2d(x, pool_size=2))
        infer_shapes(f)
        assert f.body.shape == (2, 4, 4, 4)

    def test_bias_axis_1(self):
        x = relay.var("x", (1, 5, 4, 4))
        b = relay.const(np.zeros(5))
        f = relay.Function([x], relay.bias_add(x, b, axis=1))
        infer_shapes(f)
        assert f.body.shape == (1, 5, 4, 4)

    def test_invalid_attrs_rejected(self):
        x = relay.var("x", (1, 1, 8, 8))
        w = relay.const(np.zeros((1, 1, 3, 3)))
        with pytest.raises(ReproError):
            relay.conv2d(x, w, strides=0)
        with pytest.raises(ReproError):
            relay.conv2d(x, w, padding=-1)
        with pytest.raises(ReproError):
            relay.max_pool2d(x, pool_size=0)


class TestExecution:
    @pytest.mark.parametrize(("strides", "padding"), [(1, 0), (1, 1), (2, 0), (2, 1)])
    def test_conv_matches_numpy(self, rng, strides, padding):
        x = relay.var("x", (2, 3, 8, 8))
        w = relay.const(rng.standard_normal((4, 3, 3, 3)))
        f = relay.Function([x], relay.conv2d(x, w, strides=strides, padding=padding))
        xv = rng.standard_normal((2, 3, 8, 8))
        got = build_function(f).run(x=xv)
        np.testing.assert_allclose(
            got, _np_conv2d(xv, w.value, strides, padding), rtol=1e-12, atol=1e-13
        )

    def test_pool_matches_numpy(self, rng):
        x = relay.var("x", (2, 3, 8, 8))
        f = relay.Function([x], relay.max_pool2d(x, pool_size=2))
        xv = rng.standard_normal((2, 3, 8, 8))
        np.testing.assert_allclose(
            build_function(f).run(x=xv), _np_max_pool2d(xv, 2, 2), rtol=1e-15
        )

    def test_conv_bias_relu_fused(self, rng):
        x = relay.var("x", (1, 2, 6, 6))
        w = relay.const(rng.standard_normal((3, 2, 3, 3)))
        b = relay.const(rng.standard_normal(3))
        out = relay.relu(relay.bias_add(relay.conv2d(x, w, padding=1), b, axis=1))
        f = relay.Function([x], out)
        groups = fuse_ops(f)
        assert [e.op for e in groups[0].epilogue] == ["bias_add", "relu"]
        xv = rng.standard_normal((1, 2, 6, 6))
        ref = np.maximum(
            _np_conv2d(xv, w.value, 1, 1) + b.value.reshape(1, 3, 1, 1), 0
        )
        np.testing.assert_allclose(build_function(f).run(x=xv), ref, rtol=1e-12)

    def test_conv_tiles_do_not_change_result(self, rng):
        x = relay.var("x", (1, 2, 8, 8))
        w = relay.const(rng.standard_normal((2, 2, 3, 3)))
        f = relay.Function([x], relay.conv2d(x, w, padding=1))
        infer_shapes(f)
        group = fuse_ops(f)[0]
        from repro.relay.build import group_tile_params

        py, px = group_tile_params(group)
        xv = rng.standard_normal((1, 2, 8, 8))
        base = build_function(f).run(x=xv)
        for ty, tx in [(1, 1), (2, 4), (8, 8)]:
            got = build_function(f, {py: ty, px: tx}).run(x=xv)
            np.testing.assert_allclose(got, base, rtol=1e-12)

    def test_constant_folding_conv(self, rng):
        cx = relay.const(rng.standard_normal((1, 1, 5, 5)))
        w = relay.const(rng.standard_normal((1, 1, 3, 3)))
        f = relay.Function([], relay.conv2d(cx, w))
        infer_shapes(f)
        folded = fold_constants(f)
        assert folded.body.op == "const"
        np.testing.assert_allclose(
            folded.body.value, _np_conv2d(cx.value, w.value, 1, 0), rtol=1e-12
        )


class TestTuning:
    def test_conv_group_tunable(self, rng):
        x = relay.var("x", (1, 1, 12, 12))
        w = relay.const(rng.standard_normal((2, 1, 3, 3)))
        f = relay.Function([x], relay.relu(relay.conv2d(x, w, padding=1)))
        tuned = tune_function(f, max_evals_per_group=5, seed=0)
        assert len(tuned.tile_config) == 2
        xv = rng.standard_normal((1, 1, 12, 12))
        ref = np.maximum(_np_conv2d(xv, w.value, 1, 1), 0)
        np.testing.assert_allclose(tuned.run(x=xv), ref, rtol=1e-12)
