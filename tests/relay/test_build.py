"""Tests for lowering fused groups to TE and the GraphExecutor."""

import numpy as np
import pytest

from repro import relay
from repro.common.errors import ReproError
from repro.relay import build_function, fuse_ops, infer_shapes
from repro.relay.build import group_tile_params, lower_group
from repro.runtime import build


def _mlp(batch=4, in_f=8, hidden=6, out_f=3, seed=0):
    rng = np.random.default_rng(seed)
    weights = {
        "w1": rng.standard_normal((hidden, in_f)),
        "b1": rng.standard_normal(hidden),
        "w2": rng.standard_normal((out_f, hidden)),
        "b2": rng.standard_normal(out_f),
    }
    x = relay.var("x", (batch, in_f))
    h = relay.relu(
        relay.bias_add(relay.dense(x, relay.const(weights["w1"])), relay.const(weights["b1"]))
    )
    out = relay.softmax(
        relay.bias_add(relay.dense(h, relay.const(weights["w2"])), relay.const(weights["b2"]))
    )
    return relay.Function([x], out), weights


def _mlp_reference(xv, w):
    h = np.maximum(xv @ w["w1"].T + w["b1"], 0)
    o = h @ w["w2"].T + w["b2"]
    e = np.exp(o - o.max(axis=-1, keepdims=True))
    return e / e.sum(axis=-1, keepdims=True)


class TestLowerGroup:
    def test_dense_group_executes(self):
        f, w = _mlp()
        infer_shapes(f)
        group = fuse_ops(f)[0]
        sched, args, externals = lower_group(group)
        mod = build(sched, args)
        rng = np.random.default_rng(1)
        xv = rng.standard_normal((4, 8))
        out = np.zeros((4, 6))
        mod(xv, w["w1"], w["b1"], out)
        np.testing.assert_allclose(
            out, np.maximum(xv @ w["w1"].T + w["b1"], 0), rtol=1e-12
        )

    def test_tile_config_applied(self):
        f, _ = _mlp(batch=8, hidden=8)
        infer_shapes(f)
        group = fuse_ops(f)[0]
        py, px = group_tile_params(group)
        sched, _, _ = lower_group(group, {py: 4, px: 2})
        from repro.te.schedule import SplitRelation

        anchor_stage = sched.stages[0]
        splits = [r for r in anchor_stage.relations if isinstance(r, SplitRelation)]
        assert [s.factor for s in splits] == [4, 2]


class TestGraphExecutor:
    def test_mlp_matches_numpy(self):
        f, w = _mlp()
        ex = build_function(f)
        rng = np.random.default_rng(2)
        xv = rng.standard_normal((4, 8))
        np.testing.assert_allclose(ex.run(x=xv), _mlp_reference(xv, w), rtol=1e-10)

    def test_tiles_do_not_change_result(self):
        f, w = _mlp(batch=8, in_f=8, hidden=8, out_f=4)
        infer_shapes(f)
        groups = [g for g in fuse_ops(f) if g.is_tunable]
        cfg = {}
        for g in groups:
            py, px = group_tile_params(g)
            cfg[py], cfg[px] = 2, 4
        rng = np.random.default_rng(3)
        xv = rng.standard_normal((8, 8))
        np.testing.assert_allclose(
            build_function(f, cfg).run(x=xv),
            build_function(f).run(x=xv),
            rtol=1e-10,
        )

    def test_residual_add(self):
        rng = np.random.default_rng(4)
        x = relay.var("x", (4, 6))
        w = relay.const(rng.standard_normal((6, 6)), "w")
        out = relay.add(relay.relu(relay.dense(x, w)), x)  # residual connection
        f = relay.Function([x], out)
        xv = rng.standard_normal((4, 6))
        got = build_function(f).run(x=xv)
        np.testing.assert_allclose(got, np.maximum(xv @ w.value.T, 0) + xv, rtol=1e-12)

    def test_flatten_lowering(self):
        x = relay.var("x", (2, 3, 4))
        f = relay.Function([x], relay.flatten(x))
        rng = np.random.default_rng(5)
        xv = rng.standard_normal((2, 3, 4))
        np.testing.assert_allclose(
            build_function(f).run(x=xv), xv.reshape(2, 12), rtol=1e-15
        )

    def test_missing_input_rejected(self):
        f, _ = _mlp()
        ex = build_function(f)
        with pytest.raises(ReproError):
            ex.run()

    def test_unknown_input_rejected(self):
        f, _ = _mlp()
        ex = build_function(f)
        with pytest.raises(ReproError):
            ex.run(x=np.zeros((4, 8)), y=np.zeros(1))

    def test_wrong_shape_rejected(self):
        f, _ = _mlp()
        ex = build_function(f)
        with pytest.raises(ReproError):
            ex.run(x=np.zeros((5, 8)))


class TestTuneFunction:
    def test_tuned_model_correct_and_configured(self):
        from repro.relay import tune_function

        f, w = _mlp(batch=8, in_f=16, hidden=8, out_f=4, seed=7)
        tuned = tune_function(f, max_evals_per_group=6, seed=0)
        # One (ty, tx) pair per dense group.
        assert len(tuned.tile_config) == 4
        assert len(tuned.per_group) == 2
        rng = np.random.default_rng(8)
        xv = rng.standard_normal((8, 16))
        np.testing.assert_allclose(
            tuned.run(x=xv), _mlp_reference(xv, w), rtol=1e-10
        )

    def test_tile_values_divide_dims(self):
        from repro.relay import tune_function

        f, _ = _mlp(batch=8, in_f=8, hidden=12, out_f=4)
        tuned = tune_function(f, max_evals_per_group=5, seed=1)
        for name, value in tuned.tile_config.items():
            assert value >= 1
