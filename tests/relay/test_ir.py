"""Tests for the mini-Relay graph IR."""

import numpy as np
import pytest

from repro import relay
from repro.common.errors import ReproError


class TestBuilders:
    def test_var(self):
        x = relay.var("x", (4, 5))
        assert x.op == "var" and x.shape == (4, 5) and x.name == "x"

    def test_var_bad_shape(self):
        with pytest.raises(ReproError):
            relay.var("x", (0, 5))

    def test_const_carries_value(self):
        c = relay.const(np.ones((2, 3)))
        assert c.op == "const"
        assert c.shape == (2, 3)
        np.testing.assert_array_equal(c.value, 1.0)

    def test_node_names_unique(self):
        x = relay.var("x", (2, 2))
        a = relay.relu(x)
        b = relay.relu(x)
        assert a.name != b.name

    def test_unknown_op_rejected(self):
        with pytest.raises(ReproError):
            relay.GraphNode("conv3d")


class TestFunction:
    def test_nodes_topological(self):
        x = relay.var("x", (2, 4))
        w = relay.const(np.ones((3, 4)))
        d = relay.dense(x, w)
        f = relay.Function([x], relay.relu(d))
        order = [n.name for n in f.nodes()]
        assert order.index(x.name) < order.index(d.name)
        assert order.index(d.name) < order.index(f.body.name)

    def test_free_variable_detected(self):
        x = relay.var("x", (2, 2))
        y = relay.var("y", (2, 2))
        with pytest.raises(ReproError):
            relay.Function([x], relay.add(x, y))  # y not a param

    def test_non_var_param_rejected(self):
        c = relay.const(np.ones((2, 2)))
        with pytest.raises(ReproError):
            relay.Function([c], relay.relu(c))

    def test_repr_mentions_ops(self):
        x = relay.var("x", (2, 2))
        f = relay.Function([x], relay.relu(x))
        assert "relu" in repr(f)
