"""Tests for the random forest regressor."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.ml import RandomForestRegressor


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    X = rng.random((120, 3))
    y = np.sin(4 * X[:, 0]) + X[:, 1]
    return X, y


class TestForest:
    def test_fit_predict_shapes(self, data):
        X, y = data
        f = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        assert f.predict(X[:7]).shape == (7,)

    def test_return_std(self, data):
        X, y = data
        f = RandomForestRegressor(n_estimators=10, seed=0).fit(X, y)
        mean, std = f.predict(X[:5], return_std=True)
        assert mean.shape == std.shape == (5,)
        assert (std >= 0).all()

    def test_seeded_determinism(self, data):
        X, y = data
        p1 = RandomForestRegressor(n_estimators=8, seed=3).fit(X, y).predict(X[:10])
        p2 = RandomForestRegressor(n_estimators=8, seed=3).fit(X, y).predict(X[:10])
        np.testing.assert_array_equal(p1, p2)

    def test_learns_signal(self, data):
        X, y = data
        f = RandomForestRegressor(n_estimators=25, seed=0).fit(X[:100], y[:100])
        pred = f.predict(X[100:])
        mse = float(np.mean((pred - y[100:]) ** 2))
        var = float(np.var(y[100:]))
        assert mse < 0.5 * var  # clearly better than predicting the mean

    def test_no_bootstrap_uniform_trees_identical_without_feature_sampling(self, data):
        X, y = data
        f = RandomForestRegressor(
            n_estimators=5, bootstrap=False, max_features=None, seed=0
        ).fit(X, y)
        _, std = f.predict(X[:10], return_std=True)
        np.testing.assert_allclose(std, 0.0, atol=1e-12)

    def test_uncertainty_higher_off_manifold(self, data):
        X, y = data
        f = RandomForestRegressor(n_estimators=30, seed=0).fit(X, y)
        _, std_in = f.predict(X[:30], return_std=True)
        far = np.full((30, 3), 5.0)  # far outside the unit cube
        _, std_out = f.predict(far, return_std=True)
        assert std_out.mean() >= std_in.mean() * 0.5  # not degenerate

    def test_predict_before_fit(self):
        with pytest.raises(ReproError):
            RandomForestRegressor().predict(np.zeros((1, 3)))

    def test_bad_n_estimators(self):
        with pytest.raises(ReproError):
            RandomForestRegressor(n_estimators=0)

    def test_bad_data(self):
        with pytest.raises(ReproError):
            RandomForestRegressor().fit(np.zeros((3, 2)), np.zeros(5))
