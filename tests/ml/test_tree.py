"""Tests for the CART regression tree."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.ml import DecisionTreeRegressor


class TestFitBasics:
    def test_constant_target_single_leaf(self):
        X = np.random.default_rng(0).random((20, 3))
        y = np.full(20, 7.0)
        t = DecisionTreeRegressor().fit(X, y)
        assert t.n_leaves() == 1
        np.testing.assert_allclose(t.predict(X), 7.0)

    def test_perfect_step_function(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 10.0
        t = DecisionTreeRegressor().fit(X, y)
        np.testing.assert_allclose(t.predict(X), y)

    def test_exact_split_threshold_recovered(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([0.0, 0.0, 5.0, 5.0])
        t = DecisionTreeRegressor().fit(X, y)
        assert t._root.threshold == pytest.approx(1.5)

    def test_two_features_picks_informative(self):
        rng = np.random.default_rng(1)
        X = rng.random((100, 2))
        y = (X[:, 1] > 0.5).astype(float)  # only feature 1 matters
        t = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert t._root.feature == 1

    def test_max_depth_respected(self):
        rng = np.random.default_rng(2)
        X = rng.random((200, 3))
        y = rng.random(200)
        t = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert t.depth() <= 3

    def test_min_samples_leaf(self):
        rng = np.random.default_rng(3)
        X = rng.random((40, 2))
        y = rng.random(40)
        t = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)

        def leaf_sizes(node):
            if node.is_leaf:
                return [node.n]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(t._root)) >= 10

    def test_deterministic_with_seed(self):
        rng = np.random.default_rng(4)
        X = rng.random((50, 4))
        y = rng.random(50)
        p1 = DecisionTreeRegressor(max_features="sqrt", seed=9).fit(X, y).predict(X)
        p2 = DecisionTreeRegressor(max_features="sqrt", seed=9).fit(X, y).predict(X)
        np.testing.assert_array_equal(p1, p2)


class TestValidation:
    def test_predict_before_fit(self):
        with pytest.raises(ReproError):
            DecisionTreeRegressor().predict(np.zeros((1, 1)))

    def test_empty_data_rejected(self):
        with pytest.raises(ReproError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ReproError):
            DecisionTreeRegressor().fit(np.zeros((5, 2)), np.zeros(4))

    def test_1d_x_rejected(self):
        with pytest.raises(ReproError):
            DecisionTreeRegressor().fit(np.zeros(5), np.zeros(5))

    def test_predict_wrong_width_rejected(self):
        t = DecisionTreeRegressor().fit(np.zeros((4, 2)), np.arange(4.0))
        with pytest.raises(ReproError):
            t.predict(np.zeros((3, 5)))

    def test_bad_hyperparams_rejected(self):
        with pytest.raises(ReproError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ReproError):
            DecisionTreeRegressor(max_depth=0)

    def test_bad_max_features_rejected(self):
        X, y = np.zeros((5, 2)), np.arange(5.0)
        with pytest.raises(ReproError):
            DecisionTreeRegressor(max_features=3.5).fit(X, y)


class TestBestSplitsParity:
    """`_best_splits` (column-parallel) vs `_best_split` (per-feature oracle).

    The vectorized pass claims bit-identical scores — assert exact float
    equality, not allclose, across random data, duplicate-heavy columns,
    constant columns, and min_samples_leaf settings.
    """

    @staticmethod
    def _compare(X, y, msl):
        t = DecisionTreeRegressor(min_samples_leaf=msl)
        m = y.sum() / y.shape[0]
        total_sse = float(((y - m) ** 2).sum())
        gains, thresholds = t._best_splits(X, y, total_sse)
        for j in range(X.shape[1]):
            g, th = t._best_split(X[:, j], y, total_sse)
            assert gains[j] == g, f"feature {j}: gain {gains[j]} != oracle {g}"
            assert thresholds[j] == th, (
                f"feature {j}: threshold {thresholds[j]} != oracle {th}"
            )

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n=st.integers(2, 80),
        k=st.integers(1, 6),
        msl=st.integers(1, 5),
    )
    def test_matches_oracle_on_random_data(self, seed, n, k, msl):
        rng = np.random.default_rng(seed)
        X = rng.random((n, k))
        y = rng.uniform(-5, 5, size=n)
        self._compare(X, y, msl)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), msl=st.integers(1, 4))
    def test_matches_oracle_with_heavy_duplicates(self, seed, msl):
        # Encoded tiling factors repeat a lot: draw from a tiny value set so
        # tie-handling and the distinct-value candidate mask are exercised.
        rng = np.random.default_rng(seed)
        X = rng.choice([0.0, 0.25, 0.5, 1.0], size=(40, 3))
        y = rng.random(40)
        self._compare(X, y, msl)

    def test_constant_column_gets_zero_gain(self):
        rng = np.random.default_rng(7)
        X = np.column_stack([np.full(20, 3.0), rng.random(20)])
        y = rng.random(20)
        self._compare(X, y, 1)
        t = DecisionTreeRegressor()
        gains, _ = t._best_splits(X, y, float(((y - y.mean()) ** 2).sum()))
        assert gains[0] == 0.0 and gains[1] > 0.0

    def test_min_samples_leaf_masks_all_positions(self):
        X = np.arange(4.0).reshape(-1, 1)
        y = np.array([0.0, 1.0, 2.0, 3.0])
        self._compare(X, y, 3)  # no split leaves both sides >= 3 of 4


class TestProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(5, 60))
    def test_predictions_within_target_range(self, seed, n):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 3))
        y = rng.uniform(-5, 5, size=n)
        t = DecisionTreeRegressor().fit(X, y)
        pred = t.predict(rng.random((20, 3)))
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_full_depth_interpolates_training_data(self, seed):
        rng = np.random.default_rng(seed)
        X = rng.random((30, 2))
        y = rng.random(30)
        t = DecisionTreeRegressor().fit(X, y)
        # Distinct rows are almost surely separable -> training fit is exact.
        np.testing.assert_allclose(t.predict(X), y, atol=1e-12)
