"""Tests for the genetic algorithm."""

import pytest

from repro.common.errors import ReproError, TuningError
from repro.ml import GeneticAlgorithm


def _target_fitness(genome, target):
    return -sum((a - b) ** 2 for a, b in zip(genome, target))


class TestGA:
    def test_converges_to_target(self):
        ga = GeneticAlgorithm([12, 12, 12], pop_size=12, seed=0)
        target = (9, 2, 7)
        for _ in range(400):
            g = ga.ask()
            ga.tell(g, _target_fitness(g, target))
        best, fitness = ga.best()
        assert fitness >= -2  # essentially at the optimum

    def test_genomes_within_gene_sizes(self):
        ga = GeneticAlgorithm([3, 5, 2], pop_size=6, seed=1)
        for _ in range(60):
            g = ga.ask()
            assert all(0 <= x < s for x, s in zip(g, (3, 5, 2)))
            ga.tell(g, 0.0)

    def test_elites_survive_generations(self):
        ga = GeneticAlgorithm([10, 10], pop_size=6, elite_num=2, seed=2)
        best_seen = float("-inf")
        for _ in range(100):
            g = ga.ask()
            f = _target_fitness(g, (5, 5))
            best_seen = max(best_seen, f)
            ga.tell(g, f)
        # The recorded best never regresses.
        assert ga.best()[1] == best_seen

    def test_tell_unknown_genome_rejected(self):
        ga = GeneticAlgorithm([4, 4], seed=0)
        with pytest.raises(TuningError):
            ga.tell((0, 0), 1.0)

    def test_best_before_tell_rejected(self):
        ga = GeneticAlgorithm([4], seed=0)
        with pytest.raises(TuningError):
            ga.best()

    def test_deterministic_with_seed(self):
        a = GeneticAlgorithm([8, 8], pop_size=6, seed=7)
        b = GeneticAlgorithm([8, 8], pop_size=6, seed=7)
        for _ in range(30):
            ga_g, gb_g = a.ask(), b.ask()
            assert ga_g == gb_g
            a.tell(ga_g, sum(ga_g))
            b.tell(gb_g, sum(gb_g))

    def test_generation_counter_advances(self):
        ga = GeneticAlgorithm([6, 6], pop_size=4, seed=0)
        for _ in range(20):
            g = ga.ask()
            ga.tell(g, 0.0)
        assert ga.generation >= 1

    def test_validation(self):
        with pytest.raises(ReproError):
            GeneticAlgorithm([])
        with pytest.raises(ReproError):
            GeneticAlgorithm([0, 2])
        with pytest.raises(ReproError):
            GeneticAlgorithm([2], pop_size=1)
        with pytest.raises(ReproError):
            GeneticAlgorithm([2], elite_num=5, pop_size=4)
        with pytest.raises(ReproError):
            GeneticAlgorithm([2], mutation_prob=1.5)

    def test_tiny_space_exhaustion_safe(self):
        ga = GeneticAlgorithm([2, 2], pop_size=4, seed=0)
        for _ in range(30):  # far more asks than the 4-point space
            g = ga.ask()
            ga.tell(g, _target_fitness(g, (1, 1)))
        assert ga.best()[0] == (1, 1)
