"""Tests for gradient-boosted trees."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.ml import GradientBoostedTreesRegressor


@pytest.fixture
def data():
    rng = np.random.default_rng(1)
    X = rng.random((150, 3))
    y = 3 * X[:, 0] - 2 * X[:, 1] ** 2 + 0.05 * rng.standard_normal(150)
    return X, y


class TestGBT:
    def test_training_loss_decreases(self, data):
        X, y = data
        m = GradientBoostedTreesRegressor(n_estimators=40, seed=0).fit(X, y)
        curve = m.staged_mse(X, y)
        assert curve[-1] < curve[0]
        assert curve[-1] < 0.1 * float(np.var(y))

    def test_generalizes(self, data):
        X, y = data
        m = GradientBoostedTreesRegressor(n_estimators=60, seed=0).fit(X[:120], y[:120])
        mse = float(np.mean((m.predict(X[120:]) - y[120:]) ** 2))
        assert mse < 0.3 * float(np.var(y[120:]))

    def test_init_is_mean(self, data):
        X, y = data
        m = GradientBoostedTreesRegressor(n_estimators=1, seed=0).fit(X, y)
        assert m.init_ == pytest.approx(float(y.mean()))

    def test_seeded_determinism(self, data):
        X, y = data
        p1 = GradientBoostedTreesRegressor(subsample=0.7, seed=5).fit(X, y).predict(X[:5])
        p2 = GradientBoostedTreesRegressor(subsample=0.7, seed=5).fit(X, y).predict(X[:5])
        np.testing.assert_array_equal(p1, p2)

    def test_subsample_still_learns(self, data):
        X, y = data
        m = GradientBoostedTreesRegressor(subsample=0.5, n_estimators=60, seed=0).fit(X, y)
        mse = float(np.mean((m.predict(X) - y) ** 2))
        assert mse < 0.2 * float(np.var(y))

    def test_predict_before_fit(self):
        with pytest.raises(ReproError):
            GradientBoostedTreesRegressor().predict(np.zeros((1, 3)))

    def test_bad_learning_rate(self):
        with pytest.raises(ReproError):
            GradientBoostedTreesRegressor(learning_rate=0.0)
        with pytest.raises(ReproError):
            GradientBoostedTreesRegressor(learning_rate=1.5)

    def test_bad_subsample(self):
        with pytest.raises(ReproError):
            GradientBoostedTreesRegressor(subsample=0.0)

    def test_single_sample(self):
        m = GradientBoostedTreesRegressor(n_estimators=3).fit(
            np.array([[1.0, 2.0]]), np.array([5.0])
        )
        assert m.predict(np.array([[1.0, 2.0]]))[0] == pytest.approx(5.0)
