"""Tests for the cost model, sketch policy, and the auto_schedule loop."""

import numpy as np
import pytest

import repro.te as te
from repro.common.errors import TuningError
from repro.autoscheduler import (
    EvolutionParams,
    GBTCostModel,
    RandomCostModel,
    ScheduleFeatures,
    SearchTask,
    SketchPolicy,
    TuningOptions,
    auto_schedule,
    generate_sketch,
)
from repro.autoscheduler.tune import profile_from_sketch
from tests.conftest import make_matmul


def _sketch(n=32, m=32, k=32):
    _, _, C = make_matmul(n, m, k)
    return generate_sketch(C.op)


def _mm_builder(n=24, m=24, k=24):
    def builder():
        return list(make_matmul(n, m, k))

    return builder


class TestScheduleFeatures:
    def test_shape(self):
        sketch = _sketch()
        feats = ScheduleFeatures(sketch)
        v = feats({"C.y": 8, "C.x": 16})
        assert v.shape == (feats.n_features,) == (8,)

    def test_warp_alignment_flag(self):
        feats = ScheduleFeatures(_sketch(64, 64, 64))
        aligned = feats({"C.y": 8, "C.x": 32})
        ragged = feats({"C.y": 8, "C.x": 33})
        assert aligned[6] == 1.0 and ragged[6] == 0.0

    def test_matrix(self):
        feats = ScheduleFeatures(_sketch())
        X = feats.matrix([{"C.y": 2, "C.x": 2}, {"C.y": 4, "C.x": 8}])
        assert X.shape == (2, 8)


class TestGBTCostModel:
    def test_untrained_predicts_neutral(self):
        model = GBTCostModel(_sketch(), seed=0)
        scores = model.predict([{"C.y": 2, "C.x": 2}])
        assert scores.shape == (1,)
        assert scores[0] == 0.0

    def test_learns_ranking(self):
        sketch = _sketch(64, 64, 64)
        model = GBTCostModel(sketch, seed=0)
        rng = np.random.default_rng(0)
        annotations, costs = [], []
        for _ in range(60):
            ty = int(rng.choice([1, 2, 4, 8, 16, 32, 64]))
            tx = int(rng.choice([1, 2, 4, 8, 16, 32, 64]))
            annotations.append({"C.y": ty, "C.x": tx})
            costs.append(1.0 / (ty * tx) + 0.001)  # bigger tiles cheaper
        model.update(annotations, costs)
        small = model.predict([{"C.y": 1, "C.x": 1}])[0]
        big = model.predict([{"C.y": 64, "C.x": 64}])[0]
        assert big < small

    def test_failed_measurements_skipped(self):
        model = GBTCostModel(_sketch(), seed=0)
        model.update([{"C.y": 1, "C.x": 1}], [float("inf")])
        assert model.n_observations == 0

    def test_length_mismatch_rejected(self):
        model = GBTCostModel(_sketch(), seed=0)
        with pytest.raises(TuningError):
            model.update([{"C.y": 1, "C.x": 1}], [1.0, 2.0])


class TestSketchPolicy:
    def test_batch_has_no_duplicates_or_visited(self):
        policy = SketchPolicy(_sketch(), seed=0)
        seen = set()
        for _ in range(5):
            batch = policy.propose_batch()
            for a in batch:
                key = (a["C.y"], a["C.x"])
                assert key not in seen
                seen.add(key)
                policy.tell(a, float(a["C.y"] + a["C.x"]))

    def test_best_tracks_minimum(self):
        policy = SketchPolicy(_sketch(), seed=1)
        costs = []
        for a in policy.propose_batch():
            c = 1.0 / (a["C.y"] * a["C.x"] + 1)
            costs.append(c)
            policy.tell(a, c)
        _, best = policy.best()
        assert best == min(costs)

    def test_best_before_tell_rejected(self):
        with pytest.raises(TuningError):
            SketchPolicy(_sketch(), seed=0).best()

    def test_evolution_params_validation(self):
        with pytest.raises(TuningError):
            EvolutionParams(population_size=1)
        with pytest.raises(TuningError):
            EvolutionParams(num_measures_per_round=0)
        with pytest.raises(TuningError):
            EvolutionParams(eps_greedy=1.5)

    def test_evolution_exploits_good_region(self):
        # Tell the policy a clear optimum; later batches should concentrate
        # near it more than uniform sampling would.
        sketch = _sketch(64, 64, 64)
        policy = SketchPolicy(sketch, seed=2)
        for _ in range(6):
            for a in policy.propose_batch():
                cost = abs(a["C.y"] - 32) + abs(a["C.x"] - 32) + 1.0
                policy.tell(a, cost)
        batch = policy.propose_batch()
        near = sum(1 for a in batch if 8 <= a["C.y"] <= 64 and 8 <= a["C.x"] <= 64)
        assert near >= len(batch) // 2


class TestAutoSchedule:
    def test_local_end_to_end(self):
        task = SearchTask(_mm_builder(), name="mm", target="llvm")
        result = auto_schedule(task, TuningOptions(n_trials=10, seed=0))
        assert result.n_trials == 10
        assert result.best_cost > 0
        assert set(result.best_annotation) == {"C.y", "C.x"}
        # Best annotation instantiates into a buildable schedule.
        from repro.runtime import build

        sched, args = task.apply_best(result.best_annotation)
        build(sched, args)

    def test_swing_backend(self):
        task = SearchTask(_mm_builder(64, 64, 64), name="mm64", target="swing")
        result = auto_schedule(task, TuningOptions(n_trials=20, seed=0))
        assert result.n_trials == 20
        assert len(result.database) == 20

    def test_random_cost_model_ablation(self):
        task = SearchTask(_mm_builder(), name="mm", target="swing")
        result = auto_schedule(
            task,
            TuningOptions(n_trials=10, seed=0),
            cost_model=RandomCostModel(task.sketch, seed=0),
        )
        assert result.n_trials == 10

    def test_profile_from_sketch(self):
        sketch = _sketch(100, 200, 50)
        profile = profile_from_sketch(sketch, name="mm")
        assert len(profile.stages) == 1
        st = profile.stages[0]
        assert (st.m, st.n, st.k) == (100, 200, 50)
        assert profile.candidates("C.y")[0] == 1

    def test_unknown_target_rejected(self):
        with pytest.raises(TuningError):
            SearchTask(_mm_builder(), target="fpga")

    def test_options_validation(self):
        with pytest.raises(TuningError):
            TuningOptions(n_trials=0)
