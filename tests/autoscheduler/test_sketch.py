"""Tests for sketch generation and application."""

import numpy as np
import pytest

import repro.te as te
from repro.common.errors import ScheduleError
from repro.autoscheduler import apply_sketch, generate_sketch, tile_candidates
from repro.runtime import build
from tests.conftest import make_matmul


def _matmul_graph(n=12, m=10, k=8):
    return make_matmul(n, m, k)


class TestGenerateSketch:
    def test_matmul_gets_multi_level_tile(self):
        _, _, C = _matmul_graph()
        sketch = generate_sketch(C.op)
        assert len(sketch.plans) == 1
        plan = sketch.plans[0]
        assert plan.kind == "multi_level_tile"
        assert plan.params == ("C.y", "C.x")
        assert plan.extents == (12, 10)
        assert plan.reduce_extent == 8

    def test_accepts_tensor_or_op(self):
        _, _, C = _matmul_graph()
        assert generate_sketch(C).params == generate_sketch(C.op).params

    def test_multi_stage_graph(self):
        A = te.placeholder((8, 8), name="A")
        k = te.reduce_axis((0, 8), "k")
        B = te.compute((8, 8), lambda i, j: te.sum(A[i, k] * A[k, j], axis=k), name="B")
        C = te.compute((8, 8), lambda i, j: B[i, j] + 1.0, name="C")
        sketch = generate_sketch(C.op)
        kinds = {p.op_name: p.kind for p in sketch.plans}
        assert kinds == {"B": "multi_level_tile", "C": "vectorize_inner"}
        assert sketch.params == ["B.y", "B.x"]

    def test_no_tilable_stage_rejected(self):
        A = te.placeholder((8,), name="A")
        B = te.compute((8,), lambda i: A[i] * 2.0, name="B")
        with pytest.raises(ScheduleError):
            generate_sketch(B.op)

    def test_param_extents(self):
        _, _, C = _matmul_graph()
        sketch = generate_sketch(C.op)
        assert sketch.param_extents() == {"C.y": 12, "C.x": 10}


class TestTileCandidates:
    def test_contains_divisors_and_powers_of_two(self):
        cands = tile_candidates(48)
        assert set([1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48]) <= set(cands)

    def test_includes_imperfect_tiles(self):
        # 32 does not divide 48 — Ansor-style spaces allow imperfect splits.
        assert 32 in tile_candidates(48)

    def test_sorted_unique(self):
        cands = tile_candidates(2000)
        assert cands == sorted(set(cands))

    def test_cap_respected(self):
        cands = tile_candidates(2000, max_candidates=10)
        assert len(cands) <= 10
        assert cands[0] == 1 and 1024 <= cands[-1] <= 2048

    def test_bad_extent_rejected(self):
        with pytest.raises(ScheduleError):
            tile_candidates(0)


class TestApplySketch:
    def test_produces_correct_schedule(self, rng):
        A, B, C = _matmul_graph()
        sketch = generate_sketch(C.op)
        sched = apply_sketch(sketch, {"C.y": 4, "C.x": 5})
        mod = build(sched, [A, B, C])
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c = np.zeros((12, 10), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_imperfect_tiles_still_correct(self, rng):
        A, B, C = _matmul_graph()
        sketch = generate_sketch(C.op)
        sched = apply_sketch(sketch, {"C.y": 7, "C.x": 9}, vectorize_inner=False)
        mod = build(sched, [A, B, C])
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c = np.zeros((12, 10), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_missing_annotation_rejected(self):
        _, _, C = _matmul_graph()
        sketch = generate_sketch(C.op)
        with pytest.raises(ScheduleError):
            apply_sketch(sketch, {"C.y": 4})
