"""Optimizer.speculate / confirm_speculation: side-effect freedom, exact
replay, and the refit-schedule interplay the pipelined engine relies on."""

import pytest

from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.ytopt.optimizer import Optimizer, RefitSchedule


def _space(seed):
    space = ConfigurationSpace(seed=seed)
    for i in range(4):
        space.add_hyperparameter(
            OrdinalHyperparameter(f"P{i}", tuple(range(2, 34, 2)))
        )
    return space


def _cost(config):
    d = config.get_dictionary()
    return 1.0 + sum((v - 16) ** 2 * (i + 1) for i, (_, v) in
                     enumerate(sorted(d.items())))


def _make(seed=0, schedule=RefitSchedule(dense_until=6), n_initial=6):
    return Optimizer(
        _space(seed),
        n_initial_points=n_initial,
        refit_interval=1,
        refit_schedule=schedule,
        seed=seed,
    )


def _drive(opt, n):
    """n plain ask/tell steps; returns the asked configuration dicts."""
    asked = []
    for _ in range(n):
        config = opt.ask()
        opt.tell(config, _cost(config))
        asked.append(config.get_dictionary())
    return asked


class TestSpeculateSnapshot:
    def test_speculation_does_not_perturb_the_trajectory(self):
        """A speculating twin asks the exact same sequence as a pure one."""
        pure, spec = _make(), _make()
        pure_asked, spec_asked = [], []
        for _ in range(20):
            a, b = pure.ask(), spec.ask()
            # Speculate in the engine's slot — after the ask, before the
            # tell — then throw the preview away (never confirm).
            spec.speculate(1, will_tell=1, exclude=(b,))
            spec._spec_token = None
            pure.tell(a, _cost(a))
            spec.tell(b, _cost(b))
            pure_asked.append(a.get_dictionary())
            spec_asked.append(b.get_dictionary())
        assert pure_asked == spec_asked

    def test_speculate_abstains_when_refit_always_due(self):
        """refit_every=1 (no schedule): every wave refits, so there is never
        a safe speculation — the byte-identity escape hatch."""
        opt = Optimizer(_space(0), n_initial_points=4, refit_interval=1, seed=0)
        _drive(opt, 6)  # well into the model phase
        config = opt.ask()
        assert opt.speculate(1, will_tell=1, exclude=(config,)) is None

    def test_speculate_abstains_on_phase_boundary(self):
        opt = _make(n_initial=6)
        _drive(opt, 5)
        config = opt.ask()  # the 6th: its tell crosses into the model phase
        assert opt.speculate(1, will_tell=1, exclude=(config,)) is None

    def test_speculate_rejects_bad_width(self):
        from repro.common.errors import TuningError

        with pytest.raises(TuningError, match="width"):
            _make().speculate(0)


class TestConfirmExactness:
    @pytest.mark.parametrize("width", [1, 3])
    def test_pipelined_loop_matches_serial_twin(self, width):
        """The engine's speculate -> tell -> confirm-else-ask loop proposes
        exactly what a plain ask/tell twin proposes. At width 1 the confirm
        fast path actually fires; at batch widths every wave's constant-liar
        retraction forces a clean refit, so speculation must always abstain
        (a refit-free window never exists) — and the loop still matches.
        """
        # growth=2 leaves wide refit-free windows between scheduled fits.
        sched = RefitSchedule(dense_until=4, growth=2.0)
        pipelined, serial = _make(schedule=sched), _make(schedule=sched)
        confirms = 0
        waves = 36 // width
        pip_wave, ser_wave, confirmed = None, None, False
        for _ in range(waves):
            if pip_wave is None or not confirmed:
                pip_wave = (
                    [pipelined.ask()] if width == 1
                    else pipelined.ask_batch(width)
                )
            ser_wave = [serial.ask()] if width == 1 else serial.ask_batch(width)
            assert [c.get_dictionary() for c in pip_wave] == [
                c.get_dictionary() for c in ser_wave
            ]
            spec = pipelined.speculate(
                width, will_tell=len(pip_wave), exclude=tuple(pip_wave)
            )
            for c in pip_wave:
                pipelined.tell(c, _cost(c))
            for c in ser_wave:
                serial.tell(c, _cost(c))
            confirmed = False
            if spec is not None:
                picks = pipelined.confirm_speculation(width)
                if picks is not None:
                    pip_wave, confirmed, confirms = picks, True, confirms + 1
        if width == 1:
            assert confirms >= 1
        else:
            assert confirms == 0

    def test_confirm_without_speculation_returns_none(self):
        opt = _make()
        _drive(opt, 8)
        assert opt.confirm_speculation() is None

    def test_confirm_is_single_shot(self):
        """A confirmed token is consumed; a second confirm must re-ask."""
        opt = _make()
        _drive(opt, 10)
        config = opt.ask()
        spec = opt.speculate(1, will_tell=1, exclude=(config,))
        opt.tell(config, _cost(config))
        if spec is not None and opt.confirm_speculation(1) is not None:
            assert opt.confirm_speculation(1) is None

    def test_confirm_refuses_when_incumbent_changed(self):
        """A landed wave that takes over the top of the leaderboard
        invalidates the speculation (the acquisition ranks against it)."""
        opt = _make()
        _drive(opt, 10)
        config = opt.ask()
        spec = opt.speculate(1, will_tell=1, exclude=(config,))
        opt.tell(config, 1e-9)  # a new global incumbent, mid-speculation
        if spec is not None:
            assert opt.confirm_speculation(1) is None


class TestRefitSchedule:
    def test_due_dense_then_geometric(self):
        sched = RefitSchedule(dense_until=4, growth=1.5)
        assert all(sched.due(n, 0) for n in (1, 2, 3, 4))
        assert not sched.due(5, 4)
        assert sched.due(6, 4)  # ceil(4 * 1.5)
        assert not sched.due(8, 6)
        assert sched.due(9, 6)

    def test_validation(self):
        from repro.common.errors import TuningError

        with pytest.raises(TuningError, match="dense_until"):
            RefitSchedule(dense_until=0)
        with pytest.raises(TuningError, match="growth"):
            RefitSchedule(growth=1.0)

    def test_schedule_skips_fits_and_counts_them(self):
        scheduled = _make(schedule=RefitSchedule(dense_until=6))
        every = _make(schedule=None)
        n = 30
        _drive(scheduled, n)
        _drive(every, n)
        # One fit per model-phase ask: asks n_initial+1 .. n.
        assert every.n_refits == n - every.n_initial_points
        assert scheduled.n_refits < every.n_refits
        assert scheduled.n_refits_skipped > 0
        assert (
            scheduled.n_refits + scheduled.n_refits_skipped == every.n_refits
        )
