"""BuildPool: dedup, compile-ahead speculation scoring, stats, shutdown."""

import threading
import time

import pytest

from repro.common.errors import TuningError
from repro.pipeline import BuildPool
from repro.pipeline.build_pool import config_key


class RecordingPrecompiler:
    """Thread-safe fake of ``LocalEvaluator.precompile``."""

    def __init__(self, ok=True, delay=0.0):
        self.ok = ok
        self.delay = delay
        self.calls = []
        self._lock = threading.Lock()

    def __call__(self, params):
        if self.delay:
            time.sleep(self.delay)
        with self._lock:
            self.calls.append(tuple(sorted(params.items())))
        return self.ok

    def count(self, config):
        key = tuple(sorted(config.items()))
        return sum(1 for c in self.calls if c == key)


class TestBuildPool:
    def test_disabled_without_precompiler(self):
        pool = BuildPool(None, jobs=4)
        assert not pool.enabled
        assert not pool.submit({"P0": 2})
        assert pool.wait([{"P0": 2}]) == 0.0
        pool.close()

    def test_invalid_jobs_rejected(self):
        with pytest.raises(TuningError, match="jobs must be >= 1"):
            BuildPool(RecordingPrecompiler(), jobs=0)

    def test_submit_dedups_by_config_key(self):
        pre = RecordingPrecompiler()
        with BuildPool(pre, jobs=2) as pool:
            assert pool.submit({"P0": 2, "P1": 4})
            assert not pool.submit({"P0": 2, "P1": 4})  # in flight: one build
            pool.wait([{"P0": 2, "P1": 4}])
        assert pre.count({"P0": 2, "P1": 4}) == 1
        assert pool.submitted == 1

    def test_spec_hit_reuses_the_compiled_build(self):
        """A speculative build that the real ask picks up is never redone."""
        pre = RecordingPrecompiler()
        with BuildPool(pre, jobs=2) as pool:
            config = {"P0": 8}
            assert pool.submit(config, speculative=True)
            # The real wave arrives with the same configuration: the submit
            # dedups onto the in-flight speculative build...
            assert not pool.submit(config)
            pool.score_speculation([config], [config])
            pool.wait([config])
        # ...so exactly one compile happened, scored as a hit.
        assert pre.count(config) == 1
        assert (pool.spec_hits, pool.spec_misses) == (1, 0)
        assert pool.hit_rate == 1.0

    def test_spec_miss_discarded_without_tell(self):
        """A mispredicted speculative build is dropped from the pool."""
        pre = RecordingPrecompiler()
        with BuildPool(pre, jobs=2) as pool:
            missed, actual = {"P0": 2}, {"P0": 16}
            pool.submit(missed, speculative=True)
            pool.submit(actual)
            pool.score_speculation([missed], [actual])
            assert (pool.spec_hits, pool.spec_misses) == (0, 1)
            # The missed future is forgotten: waiting on it is a no-op (its
            # artifact may still land in the content cache, harmlessly).
            assert config_key(missed) not in pool._futures
            pool.wait([actual])
        assert pool.hit_rate == 0.0

    def test_failed_builds_counted_not_raised(self):
        pre = RecordingPrecompiler(ok=False)
        with BuildPool(pre, jobs=1) as pool:
            pool.submit({"P0": 3})
            pool.wait([{"P0": 3}])  # must not raise: evaluate() reproduces it
        assert pool.failures == 1
        assert pool.completed == 1

    def test_parallel_submits_and_occupancy(self):
        pre = RecordingPrecompiler(delay=0.05)
        configs = [{"P0": v} for v in (1, 2, 3, 4)]
        with BuildPool(pre, jobs=4) as pool:
            t0 = time.perf_counter()
            for c in configs:
                pool.submit(c)
            pool.wait(configs)
            wall = time.perf_counter() - t0
        assert pool.completed == 4
        assert pool.occupancy_peak >= 2
        # Four 50ms sleeps across 4 threads: well under the 200ms serial sum
        # (sleep releases the GIL like the real subprocess compile does).
        assert wall < 0.18
        stats = pool.stats()
        assert stats["busy_seconds"] >= 0.18  # the worker-seconds integral
        assert stats["jobs"] == 4.0

    def test_discard_forgets_pending_builds(self):
        pre = RecordingPrecompiler(delay=0.02)
        with BuildPool(pre, jobs=1) as pool:
            pool.submit({"P0": 5})
            pool.discard([{"P0": 5}])
            assert pool._futures == {}

    def test_wait_accumulates_stall_seconds(self):
        pre = RecordingPrecompiler(delay=0.03)
        with BuildPool(pre, jobs=1) as pool:
            pool.submit({"P0": 6})
            elapsed = pool.wait([{"P0": 6}])
        assert elapsed > 0.0
        assert pool.wait_seconds >= elapsed
