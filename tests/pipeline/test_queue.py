"""OrderedTellQueue: in-order release whatever the completion order."""

import pytest

from repro.common.errors import TuningError
from repro.pipeline import OrderedTellQueue


class TestOrderedTellQueue:
    def test_in_order_releases_immediately(self):
        q = OrderedTellQueue()
        assert q.put(0, "a") == ["a"]
        assert q.put(1, "b") == ["b"]
        assert q.next_seq == 2
        assert q.n_pending == 0

    def test_out_of_order_buffers_then_flushes(self):
        q = OrderedTellQueue()
        assert q.put(2, "c") == []
        assert q.put(1, "b") == []
        assert q.n_pending == 2
        # Completing seq 0 unblocks the whole stalled run, in ask order.
        assert q.put(0, "a") == ["a", "b", "c"]
        assert q.n_pending == 0
        assert q.next_seq == 3

    def test_interleaved_waves(self):
        q = OrderedTellQueue()
        released = []
        for seq in (1, 0, 3, 5, 2, 4):
            released.extend(q.put(seq, seq))
        assert released == [0, 1, 2, 3, 4, 5]

    def test_custom_start(self):
        q = OrderedTellQueue(start=7)
        assert q.put(8, "b") == []
        assert q.put(7, "a") == ["a", "b"]

    def test_duplicate_sequence_rejected(self):
        q = OrderedTellQueue()
        q.put(1, "b")
        with pytest.raises(TuningError, match="duplicate"):
            q.put(1, "b2")

    def test_already_released_sequence_rejected(self):
        q = OrderedTellQueue()
        q.put(0, "a")
        with pytest.raises(TuningError, match="duplicate or already-released"):
            q.put(0, "again")
