"""Pipelined vs. serial engine parity: identical run records, no extra tells.

The contract the in-order tell queue + snapshot/restore speculation buy:
whatever the pipeline overlaps, the sequence of committed observations is
exactly the serial loop's. Under the Swing virtual clock every quantity —
configuration, priced runtime, compile time, elapsed process time — is
deterministic, so the comparison is literal equality, row for row.
"""

import pytest

from repro.kernels.registry import get_benchmark
from repro.pipeline import PipelineConfig
from repro.swing import SwingEvaluator
from repro.ytopt.problem import TuningProblem
from repro.ytopt.search import AMBS


def _signature(result):
    return [
        (r.config, r.runtime, r.compile_time, r.elapsed, r.fidelity, r.error)
        for r in result.database.records()
    ]


def _run_swing(seed, evals, batch, pipelined, refit_every):
    bench = get_benchmark("lu", "mini")
    evaluator = SwingEvaluator(bench.profile, number=1)
    problem = TuningProblem(
        bench.config_space(seed=seed), evaluator, name=bench.name
    )
    search = AMBS(
        problem,
        max_evals=evals,
        seed=seed,
        batch_size=batch,
        pipeline=PipelineConfig() if pipelined else None,
        refit_every=refit_every,
    )
    result = search.run()
    return result, _signature(result)


class TestPipelinedSerialParity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("refit_every", [1, 0])
    def test_identical_records(self, seed, refit_every):
        """The issue's headline guarantee, fuzzed over seeds: at
        ``refit_every=1`` (and under the geometric schedule, since both arms
        share it) the pipelined run's store is byte-identical to serial."""
        serial, sig_s = _run_swing(seed, 18, 1, False, refit_every)
        pipelined, sig_p = _run_swing(seed, 18, 1, True, refit_every)
        assert sig_s == sig_p
        assert serial.best_config == pipelined.best_config
        assert serial.best_runtime == pipelined.best_runtime

    @pytest.mark.parametrize("batch", [2, 4])
    def test_identical_records_batched(self, batch):
        _, sig_s = _run_swing(0, 16, batch, False, 1)
        _, sig_p = _run_swing(0, 16, batch, True, 1)
        assert sig_s == sig_p

    def test_no_extra_tells_from_speculation(self):
        """Speculative work never leaks into the committed record stream."""
        result, sig = _run_swing(0, 18, 1, True, 0)
        assert result.n_evals == 18
        assert len(sig) == 18

    def test_pipelined_overhead_is_stamped(self):
        result, _ = _run_swing(0, 12, 1, True, 0)
        assert result.overhead is not None
        assert result.overhead["mode"] == "pipelined"
        for key in ("search_seconds", "compile_seconds", "measure_seconds",
                    "wall_seconds", "spec_hit_rate", "refits",
                    "refits_skipped"):
            assert key in result.overhead
        serial, _ = _run_swing(0, 12, 1, False, 0)
        assert serial.overhead is not None
        assert serial.overhead["mode"] == "serial"
