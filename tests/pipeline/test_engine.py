"""run_pipelined end-to-end on a real-clock evaluator with compile-ahead.

Uses a fake native-style evaluator (deterministic costs, a recording
``precompile``) so the full engine path runs — build pool, side-thread
speculation, confirm fast path, ordered commits — without a C toolchain.
"""

import threading
import time

from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.pipeline import PipelineConfig
from repro.ytopt.problem import TuningProblem
from repro.ytopt.search import AMBS


def _space(seed):
    space = ConfigurationSpace(seed=seed)
    for name in ("P0", "P1"):
        space.add_hyperparameter(OrdinalHyperparameter(name, tuple(range(2, 26, 2))))
    return space


class FakeNativeEvaluator:
    """Real-clock evaluator: deterministic cost, recording precompile."""

    def __init__(self):
        self._start = time.perf_counter()
        self._lock = threading.Lock()
        self.precompiled = []

    def elapsed(self):
        return time.perf_counter() - self._start

    def _cost(self, cfg):
        return 1.0 + (cfg["P0"] - 12) ** 2 + 2 * (cfg["P1"] - 8) ** 2

    def precompile(self, params):
        with self._lock:
            self.precompiled.append(tuple(sorted(
                (k, int(v)) for k, v in params.items()
            )))
        return True

    def evaluate(self, params):
        from repro.runtime.measure import MeasureResult

        cfg = {k: int(v) for k, v in params.items()}
        return MeasureResult(
            config=cfg,
            costs=(self._cost(cfg),),
            compile_time=0.0,
            timestamp=self.elapsed(),
        )


def _run(evals, pipeline, seed=0, refit_every=None):
    evaluator = FakeNativeEvaluator()
    problem = TuningProblem(_space(seed), evaluator, name="fake")
    search = AMBS(
        problem,
        max_evals=evals,
        seed=seed,
        pipeline=pipeline,
        refit_every=refit_every,
    )
    result = search.run()
    return result, evaluator


class TestPipelinedEngine:
    def test_speculation_hits_and_each_config_built_once(self):
        result, evaluator = _run(
            40, PipelineConfig(compile_jobs=2, dense_until=8)
        )
        assert result.n_evals == 40
        # Compile-ahead fired and the real waves picked the builds up.
        assert result.overhead["spec_hit_rate"] > 0.0
        # Dedup: no configuration was ever built twice (spec-hit reuse).
        assert len(evaluator.precompiled) == len(set(evaluator.precompiled))

    def test_matches_serial_twin_on_deterministic_costs(self):
        """Same refit schedule, same seed, deterministic costs: the pipelined
        engine (speculation, side thread, build pool and all) commits the
        same configurations and runtimes as the serial loop."""
        pipelined, _ = _run(38, PipelineConfig(compile_jobs=2), refit_every=0)
        serial, _ = _run(38, None, refit_every=0)
        pip_records = [
            (r.config, r.runtime) for r in pipelined.database.records()
        ]
        ser_records = [
            (r.config, r.runtime) for r in serial.database.records()
        ]
        assert pip_records == ser_records

    def test_speculative_misses_never_told(self):
        result, _ = _run(30, PipelineConfig(compile_jobs=2, dense_until=8))
        assert len(result.database.records()) == 30

    def test_refit_schedule_reduces_fits(self):
        pipelined, _ = _run(40, PipelineConfig(dense_until=8))
        # The legacy loop refits on every model-phase ask (evals - initial
        # design); the geometric schedule must do strictly fewer, and every
        # skip is accounted for.
        legacy_fits = 40 - 10
        assert pipelined.overhead["refits"] < legacy_fits
        assert pipelined.overhead["refits_skipped"] > 0
        assert (
            pipelined.overhead["refits"] + pipelined.overhead["refits_skipped"]
            == legacy_fits
        )
