"""Meta-surrogate: fit refusals, provenance, and content-addressed caching."""

from __future__ import annotations

import pickle

import pytest

from repro.common.errors import ReproError
from repro.transfer import MetaSurrogate, TaskDescriptor, TransferCorpus
from repro.transfer.meta import MetaSurrogateInfo

from tests.transfer.test_corpus import _archive

CORPUS_TASKS = [
    ("lu", "large", 0, 8),
    ("cholesky", "large", 0, 8),
    ("cholesky", "extralarge", 0, 8),
]


@pytest.fixture(scope="module")
def corpus_db(tmp_path_factory):
    db = tmp_path_factory.mktemp("meta") / "runs.sqlite"
    _archive(db, CORPUS_TASKS)
    return db


class TestFit:
    def test_fit_and_predict(self, corpus_db):
        corpus = TransferCorpus.from_store(corpus_db)
        ms = MetaSurrogate(seed=0).fit(corpus)
        desc = TaskDescriptor.from_task("lu", "large")
        configs = [{"P0": 8, "P1": 8}, {"P0": 100, "P1": 20}]
        mean, std = ms.predict(desc, configs)
        assert mean.shape == std.shape == (2,)
        assert (std >= 0).all()

    def test_predict_before_fit_raises(self):
        with pytest.raises(ReproError, match="before fit"):
            MetaSurrogate().predict(
                TaskDescriptor.from_task("lu", "large"), [{"P0": 8, "P1": 8}]
            )

    def test_single_task_corpus_refused(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        _archive(db, [("lu", "large", 0, 8)])
        with pytest.raises(ReproError, match=">= 2 tasks"):
            MetaSurrogate().fit(TransferCorpus.from_store(db))

    def test_claimed_exclusion_must_hold(self, corpus_db):
        corpus = TransferCorpus.from_store(corpus_db)  # lu/large included
        with pytest.raises(ReproError, match="claims to exclude"):
            MetaSurrogate().fit(corpus, excluded=("lu", "large"))

    def test_assert_excludes(self, corpus_db):
        corpus = TransferCorpus.from_store(corpus_db)
        ms = MetaSurrogate().fit(corpus)
        with pytest.raises(ReproError, match="refusing to seed"):
            ms.assert_excludes("lu", "large")
        ms.assert_excludes("3mm", "large")  # never trained on -> fine


class TestSerialization:
    def test_save_load_roundtrip(self, corpus_db, tmp_path):
        corpus = TransferCorpus.from_store(corpus_db)
        ms = MetaSurrogate(seed=3).fit(corpus)
        path = ms.save(tmp_path)
        assert path.name == f"meta-{ms.info.fingerprint}.pkl"
        loaded = MetaSurrogate.load(path)
        assert loaded.info == ms.info
        desc = TaskDescriptor.from_task("3mm", "large")
        configs = [{f"P{i}": 2 for i in range(6)}]
        assert loaded.predict(desc, configs)[0] == ms.predict(desc, configs)[0]

    def test_load_refuses_descriptor_version_mismatch(self, tmp_path):
        stale = tmp_path / "meta-deadbeef.pkl"
        stale.write_bytes(pickle.dumps({"descriptor_version": 0}))
        with pytest.raises(ReproError, match="descriptor version"):
            MetaSurrogate.load(stale)

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            MetaSurrogate.load(tmp_path / "meta-none.pkl")

    def test_fingerprint_depends_on_seed_and_exclusion(self, corpus_db):
        corpus = TransferCorpus.from_store(corpus_db)
        base = MetaSurrogate(seed=0)._fit_fingerprint(corpus, None)
        assert MetaSurrogate(seed=1)._fit_fingerprint(corpus, None) != base
        assert (
            MetaSurrogate(seed=0)._fit_fingerprint(corpus, ("lu", "large")) != base
        )


class TestFitOrLoad:
    def test_fits_then_reuses_cache(self, corpus_db, monkeypatch):
        ms1, corpus1 = MetaSurrogate.fit_or_load(corpus_db, seed=0)
        cached = corpus_db.parent / f"meta-{ms1.info.fingerprint}.pkl"
        assert cached.exists()

        # Second call must hit the cache: a fit would now blow up.
        def boom(self, corpus, excluded=None):
            raise AssertionError("refit despite unchanged corpus")

        monkeypatch.setattr(MetaSurrogate, "fit", boom)
        ms2, _ = MetaSurrogate.fit_or_load(corpus_db, seed=0)
        assert ms2.info == ms1.info

    def test_exclude_drops_task_before_fit(self, corpus_db):
        ms, corpus = MetaSurrogate.fit_or_load(corpus_db, exclude=("lu", "large"))
        assert ("lu", "large") not in corpus.tasks
        assert ms.info.excluded == ("lu", "large")
        ms.assert_excludes("lu", "large")  # the honesty contract holds

    def test_info_is_provenance_complete(self, corpus_db):
        ms, corpus = MetaSurrogate.fit_or_load(corpus_db)
        assert isinstance(ms.info, MetaSurrogateInfo)
        assert ms.info.n_records == len(corpus)
        assert ms.info.tasks == tuple(sorted(corpus.tasks))
        assert ms.summary()["fitted"] is True
