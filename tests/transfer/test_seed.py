"""TransferSeed: deterministic ranking, exclusion honesty, optimizer wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.kernels import get_benchmark
from repro.transfer import MetaSurrogate, TransferCorpus, TransferSeed
from repro.ytopt import Optimizer

from tests.transfer.test_corpus import _archive


@pytest.fixture(scope="module")
def meta(tmp_path_factory):
    """A meta-surrogate fit on lu+cholesky/large, honest for any other task."""
    db = tmp_path_factory.mktemp("seedcorpus") / "runs.sqlite"
    _archive(db, [("lu", "large", 0, 10), ("cholesky", "large", 0, 10)])
    return MetaSurrogate(seed=0).fit(TransferCorpus.from_store(db))


@pytest.fixture(scope="module")
def meta_excl_lu(tmp_path_factory):
    db = tmp_path_factory.mktemp("seedcorpus2") / "runs.sqlite"
    _archive(db, [("lu", "large", 0, 10), ("cholesky", "large", 0, 10),
                  ("cholesky", "extralarge", 0, 10)])
    corpus = TransferCorpus.from_store(db, exclude=("lu", "large"))
    return MetaSurrogate(seed=0).fit(corpus, excluded=("lu", "large"))


class TestRanking:
    def test_small_space_is_enumerated(self, meta_excl_lu):
        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        space = get_benchmark("lu", "large")
        expected = 1
        for cands in space.candidates.values():
            expected *= len(cands)
        assert len(ts) == expected

    def test_large_space_uses_bounded_pool(self, meta_excl_lu):
        ts = TransferSeed(meta_excl_lu, "3mm", "large", seed=0, pool_size=256)
        assert len(ts) == 256
        assert len({tuple(sorted(c.items())) for c in ts._pool}) == 256

    def test_deterministic_across_instances(self, meta_excl_lu):
        a = TransferSeed(meta_excl_lu, "3mm", "large", seed=7, pool_size=128)
        b = TransferSeed(meta_excl_lu, "3mm", "large", seed=7, pool_size=128)
        assert a.initial_design(8) == b.initial_design(8)
        assert a.summary() == b.summary()

    def test_initial_design_distinct_and_valid(self, meta_excl_lu):
        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        design = ts.initial_design(10)
        assert len(design) == 10
        assert len({tuple(sorted(c.items())) for c in design}) == 10
        bench = get_benchmark("lu", "large")
        for config in design:
            for name, value in config.items():
                assert value in bench.candidates[name]

    def test_exploit_first_then_spread(self, meta_excl_lu):
        """Leading half = straight top ranks; back half diversifies."""
        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        design = ts.initial_design(10)
        top = [dict(ts._pool[i]) for i in ts._order[:5]]
        assert design[:5] == top

    def test_score_matches_ranking(self, meta_excl_lu):
        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        design = ts.initial_design(4)
        scores = ts.score(design)
        assert scores.shape == (4,)
        # Exploit picks come back in ascending predicted-cost order.
        assert np.all(np.diff(scores[:2]) >= 0)

    def test_invalid_pool_size(self, meta_excl_lu):
        with pytest.raises(ReproError, match="pool_size"):
            TransferSeed(meta_excl_lu, "lu", "large", pool_size=0)

    def test_negative_design_size(self, meta_excl_lu):
        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        with pytest.raises(ReproError, match=">= 0"):
            ts.initial_design(-1)


class TestExclusionHonesty:
    def test_refuses_task_the_meta_trained_on(self, meta):
        with pytest.raises(ReproError, match="refusing to seed"):
            TransferSeed(meta, "lu", "large", seed=0)

    def test_opt_out_for_deliberate_reuse(self, meta):
        ts = TransferSeed(meta, "lu", "large", seed=0, enforce_exclusion=False)
        assert len(ts.initial_design(3)) == 3

    def test_unseen_task_is_fine(self, meta):
        ts = TransferSeed(meta, "3mm", "large", seed=0, pool_size=64)
        assert ts.summary()["meta_tasks"] == ["cholesky/large", "lu/large"]


class TestOptimizerWiring:
    def test_seeded_configs_are_the_first_asks(self, meta_excl_lu):
        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        bench = get_benchmark("lu", "large")
        opt = Optimizer(bench.config_space(seed=0), n_initial_points=6,
                        seed=0, transfer_seed=ts)
        design = ts.initial_design(6)
        for expected in design:
            config = opt.ask()
            assert dict(config) == expected
            opt.tell(config, 1.0 + expected["P0"] / 1000.0)

    def test_post_seed_asks_leave_the_design(self, meta_excl_lu):
        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        bench = get_benchmark("lu", "large")
        opt = Optimizer(bench.config_space(seed=0), n_initial_points=3,
                        seed=0, transfer_seed=ts, transfer_bias=0.5)
        seeded = {tuple(sorted(c.items())) for c in ts.initial_design(3)}
        for _ in range(3):
            c = opt.ask()
            opt.tell(c, float(c["P0"]))
        c = opt.ask()  # model-guided phase; must not re-propose a seed
        assert tuple(sorted(dict(c).items())) not in seeded
        opt.tell(c, float(c["P0"]))

    def test_negative_bias_rejected(self, meta_excl_lu):
        from repro.common.errors import TuningError

        ts = TransferSeed(meta_excl_lu, "lu", "large", seed=0)
        bench = get_benchmark("lu", "large")
        with pytest.raises(TuningError):
            Optimizer(bench.config_space(seed=0), seed=0,
                      transfer_seed=ts, transfer_bias=-0.1)

    def test_cold_stream_unchanged_by_transfer_module_import(self):
        """A cold optimizer asks identically whether or not transfer exists."""
        bench = get_benchmark("lu", "large")
        a = Optimizer(bench.config_space(seed=5), n_initial_points=4, seed=5)
        b = Optimizer(bench.config_space(seed=5), n_initial_points=4, seed=5,
                      transfer_seed=None, transfer_bias=0.0)
        for _ in range(4):
            ca, cb = a.ask(), b.ask()
            assert dict(ca) == dict(cb)
            a.tell(ca, 1.0)
            b.tell(cb, 1.0)
