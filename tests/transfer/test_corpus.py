"""Corpus assembly: store scanning, hygiene filters, and merge invariance."""

from __future__ import annotations

import pytest

from repro.common.errors import ReproError
from repro.configspace import space_hash
from repro.experiments import run_tuner
from repro.kernels import get_benchmark
from repro.service.shards import ShardedRunStore
from repro.telemetry import (
    RunFinished,
    RunStarted,
    RunStore,
    StoreSink,
    Telemetry,
    TrialMeasured,
    telemetry_session,
)
from repro.transfer import TaskDescriptor, TransferCorpus


def _archive(db_path, specs):
    """Archive quick ytopt runs: specs = [(kernel, size, seed, evals), ...]."""
    tel = Telemetry(sinks=[StoreSink(RunStore(db_path), own_store=True)])
    with telemetry_session(tel):  # closes tel (and the store) on exit
        for kernel, size, seed, evals in specs:
            run_tuner(get_benchmark(kernel, size), "ytopt",
                      max_evals=evals, seed=seed)


def _manual_run(store, kernel, size, seed, trials, hash_value=None, tuner="ytopt"):
    if hash_value is None:
        hash_value = space_hash(get_benchmark(kernel, size).config_space())
    run_id = f"{kernel}:{size}:{tuner}:seed{seed}"
    store.save_run(
        RunStarted(
            run_id=run_id, kernel=kernel, size_name=size, tuner=tuner,
            seed=seed, max_evals=len(trials),
            metadata={"space_hash": hash_value},
        ),
        RunFinished(
            run_id=run_id,
            best_runtime=min(t.runtime for t in trials),
            best_config=trials[0].config,
            n_evals=len(trials),
            total_time=trials[-1].elapsed,
        ),
        trials,
    )
    return run_id


def _trial(config, runtime, elapsed, fidelity="full", error=None):
    return TrialMeasured(config=config, runtime=runtime, compile_time=0.1,
                        elapsed=elapsed, fidelity=fidelity, error=error)


class TestFromStore:
    def test_joins_descriptors_to_evaluations(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        _archive(db, [("lu", "large", 0, 8), ("cholesky", "large", 0, 8)])
        corpus = TransferCorpus.from_store(db)
        assert corpus.n_tasks == 2
        assert len(corpus) == 16
        X, y = corpus.matrix()
        assert X.shape == (
            16,
            TaskDescriptor.task_feature_len() + TaskDescriptor.config_feature_len(),
        )
        assert (y > 0).all()
        assert set(corpus.task_of_row()) == {("lu", "large"), ("cholesky", "large")}

    def test_exclude_drops_the_target_task(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        _archive(db, [("lu", "large", 0, 6), ("cholesky", "large", 0, 6)])
        corpus = TransferCorpus.from_store(db, exclude=("lu", "large"))
        assert list(corpus.tasks) == [("cholesky", "large")]
        assert len(corpus) == 6

    def test_pruned_failed_and_duplicate_rows_are_skipped(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        with RunStore(db) as store:
            _manual_run(store, "lu", "large", 0, [
                _trial({"P0": 8, "P1": 8}, 1.0, 1.0),
                _trial({"P0": 10, "P1": 8}, 2.0, 2.0, fidelity="pruned"),
                _trial({"P0": 16, "P1": 8}, 1.5, 3.0, error="boom"),
                _trial({"P0": 8, "P1": 8}, 1.1, 4.0),  # duplicate config
            ])
        corpus = TransferCorpus.from_store(db)
        assert len(corpus) == 1
        assert corpus.skipped_records == 3

    def test_stale_space_hash_skips_the_run(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        with RunStore(db) as store:
            _manual_run(store, "lu", "large", 0,
                        [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)],
                        hash_value="00ddeadbeef0")
        corpus = TransferCorpus.from_store(db)
        assert len(corpus) == 0
        assert corpus.skipped_runs == 1

    def test_unknown_kernel_rows_are_skipped_not_fatal(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        with RunStore(db) as store:
            _manual_run(store, "gemm", "large", 0,
                        [_trial({"P0": 8}, 1.0, 1.0)], hash_value="ffff")
            _manual_run(store, "lu", "large", 0,
                        [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)])
        corpus = TransferCorpus.from_store(db)
        assert list(corpus.tasks) == [("lu", "large")]
        assert corpus.skipped_runs == 1

    def test_max_records_per_task_caps_contribution(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        _archive(db, [("lu", "large", 0, 10)])
        corpus = TransferCorpus.from_store(db, max_records_per_task=4)
        assert len(corpus) == 4

    def test_missing_store_raises(self, tmp_path):
        with pytest.raises(ReproError):
            TransferCorpus.from_store(tmp_path / "nope.sqlite")


class TestMergeInvariance:
    def test_fingerprint_identical_across_shards_and_merged(self, tmp_path):
        """Scanning shard files directly == scanning the merged store."""
        root = tmp_path / "service"
        sharded = ShardedRunStore(root)
        with sharded.open_shard("s1") as s1:
            _manual_run(s1, "lu", "large", 0,
                        [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)])
        with sharded.open_shard("s2") as s2:
            _manual_run(s2, "cholesky", "large", 0,
                        [_trial({"P0": 10, "P1": 8}, 2.0, 1.0)])
        from_shards = TransferCorpus.from_store(root)
        sharded.merge(compact=True)
        from_merged = TransferCorpus.from_store(root)
        assert from_shards.fingerprint() == from_merged.fingerprint()
        assert len(from_shards) == len(from_merged) == 2
        # Descriptor digests (the feature layout) also survive the merge.
        for key, samples in from_shards.tasks.items():
            assert samples.descriptor.digest() == (
                from_merged.tasks[key].descriptor.digest()
            )

    def test_merged_plus_leftover_shard_is_deduplicated(self, tmp_path):
        root = tmp_path / "service"
        sharded = ShardedRunStore(root)
        with sharded.open_shard("s1") as s1:
            _manual_run(s1, "lu", "large", 0,
                        [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)])
        sharded.merge(compact=False)  # shard remains next to merged.sqlite
        corpus = TransferCorpus.from_store(root)
        assert len(corpus) == 1  # run seen once, not twice
        assert corpus.tasks[("lu", "large")].n_runs == 1

    def test_fingerprint_changes_with_new_evidence(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        _archive(db, [("lu", "large", 0, 4)])
        before = TransferCorpus.from_store(db).fingerprint()
        _archive(db, [("cholesky", "large", 0, 4)])
        after = TransferCorpus.from_store(db).fingerprint()
        assert before != after
