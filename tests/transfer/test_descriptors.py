"""Descriptor determinism: same task, same bytes — anywhere, any time.

The meta-surrogate serializes next to the store and is reused across
processes and merges, so the features it was trained on must be
reconstructible bit-for-bit later. The battery pins byte-identical vectors
in-process, across a fresh interpreter, and across a shard merge.
"""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.configspace import space_hash
from repro.kernels import get_benchmark, list_benchmarks
from repro.transfer import N_PARAM_SLOTS, TaskDescriptor
from repro.transfer.descriptors import ABSENT


class TestFromTask:
    def test_solver_descriptor_shape(self):
        d = TaskDescriptor.from_task("lu", "large")
        assert d.param_names == ("P0", "P1")
        assert d.n_params == 2
        assert d.n_stages == 1
        assert d.flops > 0 and d.bytes_moved > 0
        assert d.space_hash == space_hash(
            get_benchmark("lu", "large").config_space()
        )

    def test_3mm_descriptor_shape(self):
        d = TaskDescriptor.from_task("3mm", "extralarge")
        assert d.n_params == 6
        assert d.n_stages == 3
        # 228M-ish configurations -> log2 around 27.7
        assert 20 < d.log2_space_size < 35

    def test_unknown_kernel_raises(self):
        # "gemm" is a registered bench plugin these days — pick a name that
        # no registry (paper kernels or bench plugins) will ever resolve.
        with pytest.raises(ReproError):
            TaskDescriptor.from_task("fft", "large")

    def test_plugin_kernel_gets_a_descriptor(self):
        d = TaskDescriptor.from_task("gemm", "large")
        assert d.param_names == ("P0", "P1")
        assert d.flops > 0 and d.bytes_moved > 0

    def test_every_registered_benchmark_has_a_descriptor(self):
        for kernel, size in list_benchmarks():
            d = TaskDescriptor.from_task(kernel, size)
            assert len(d.vector()) == TaskDescriptor.task_feature_len()


class TestDeterminism:
    def test_vector_is_byte_identical_across_instances(self):
        a = TaskDescriptor.from_task("cholesky", "large")
        b = TaskDescriptor.from_task("cholesky", "large")
        assert a.vector().tobytes() == b.vector().tobytes()
        assert a.digest() == b.digest()

    def test_digest_differs_across_tasks(self):
        digests = {
            TaskDescriptor.from_task(k, s).digest() for k, s in list_benchmarks()
        }
        assert len(digests) == len(list_benchmarks())

    def test_digest_identical_in_a_fresh_process(self):
        """The cross-process half of the determinism contract."""
        code = (
            "import sys; sys.path.insert(0, sys.argv[1])\n"
            "from repro.transfer import TaskDescriptor\n"
            "for k, s in [('lu', 'large'), ('3mm', 'extralarge')]:\n"
            "    d = TaskDescriptor.from_task(k, s)\n"
            "    print(d.digest(), d.vector().tobytes().hex())\n"
        )
        import repro

        src_root = str(next(iter(repro.__path__)) + "/..")
        out = subprocess.run(
            [sys.executable, "-c", code, src_root],
            capture_output=True, text=True, check=True,
        ).stdout.splitlines()
        for line, (k, s) in zip(out, [("lu", "large"), ("3mm", "extralarge")]):
            digest, vec_hex = line.split()
            d = TaskDescriptor.from_task(k, s)
            assert digest == d.digest()
            assert vec_hex == d.vector().tobytes().hex()

    def test_vector_is_read_only(self):
        v = TaskDescriptor.from_task("lu", "large").vector()
        with pytest.raises(ValueError):
            v[0] = 99.0


class TestConfigEncoding:
    def test_fixed_width_and_absent_slots(self):
        d = TaskDescriptor.from_task("lu", "large")
        enc = d.encode_config({"P0": 50, "P1": 50})
        assert len(enc) == TaskDescriptor.config_feature_len()
        # Slots beyond the task's 2 params carry the sentinel.
        assert np.all(enc[2 * 2:] == ABSENT)
        assert np.all(enc[: 2 * 2] >= 0)

    def test_magnitude_and_rank_encodings_are_monotone(self):
        d = TaskDescriptor.from_task("lu", "large")
        cands = d.candidates[0]
        small = d.encode_config({"P0": cands[0], "P1": cands[0]})
        big = d.encode_config({"P0": cands[-1], "P1": cands[-1]})
        assert big[0] > small[0]  # log2 magnitude position
        assert big[1] > small[1]  # rank position
        assert big[1] == 1.0  # top rank normalized to 1

    def test_unknown_parameter_raises(self):
        d = TaskDescriptor.from_task("lu", "large")
        with pytest.raises(ReproError, match="unknown to task"):
            d.encode_config({"P9": 4})

    def test_joined_rows_broadcast(self):
        d = TaskDescriptor.from_task("3mm", "large")
        configs = [
            {"P0": 1, "P1": 1, "P2": 1, "P3": 1, "P4": 1, "P5": 1},
            {"P0": 2, "P1": 2, "P2": 2, "P3": 2, "P4": 2, "P5": 2},
        ]
        rows = d.joined_rows(configs)
        assert rows.shape == (
            2,
            TaskDescriptor.task_feature_len() + TaskDescriptor.config_feature_len(),
        )
        # Task-feature prefix is identical on both rows; config tail differs.
        n = TaskDescriptor.task_feature_len()
        assert np.array_equal(rows[0, :n], rows[1, :n])
        assert not np.array_equal(rows[0, n:], rows[1, n:])

    def test_slot_cap_enforced(self):
        with pytest.raises(ReproError, match="at most"):
            TaskDescriptor(
                kernel="x", size_name="y", space_hash="h",
                param_names=tuple(f"P{i}" for i in range(N_PARAM_SLOTS + 1)),
                candidates=tuple((1, 2) for _ in range(N_PARAM_SLOTS + 1)),
                dims=(8, 8, 8, 8), n_stages=1, flops=1.0, bytes_moved=1.0,
            )
