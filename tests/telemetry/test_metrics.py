"""Metrics registry: counters, histograms, derived rates, event folding."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    CacheHit,
    CacheMiss,
    MetricsRegistry,
    MetricsSink,
    PoolRebuilt,
    SpanClosed,
    SurrogateFitted,
    Telemetry,
    TrialMeasured,
    WorkerCrashed,
)
from repro.telemetry.metrics import Histogram, format_metrics_summary


def _trial(rt: float = 1.0, error: str | None = None) -> TrialMeasured:
    return TrialMeasured(
        config={"P0": 1}, runtime=rt, compile_time=0.1, elapsed=rt, error=error
    )


class TestPrimitives:
    def test_counter_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("evaluations")
        c.inc()
        c.inc(2.0)
        assert reg.counter("evaluations").value == 3.0  # same object returned

    def test_histogram_exact_stats(self):
        h = Histogram("rt")
        for v in [4.0, 1.0, 3.0, 2.0]:
            h.observe(v)
        assert h.count == 4
        assert h.total == 10.0
        assert h.mean == 2.5
        assert (h.min, h.max) == (1.0, 4.0)

    def test_histogram_percentiles(self):
        h = Histogram("rt")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 100.0
        assert abs(h.percentile(50) - 50.0) <= 1.0

    def test_histogram_reservoir_bounded(self):
        h = Histogram("rt", max_samples=16)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert len(h._samples) == 16
        assert h.max == 999.0  # exact extrema survive thinning

    def test_histogram_rejects_bad_args(self):
        with pytest.raises(ValueError):
            Histogram("x", max_samples=0)
        with pytest.raises(ValueError):
            Histogram("x").percentile(101)

    def test_empty_histogram_summary(self):
        s = Histogram("x").summary()
        assert s["count"] == 0.0 and s["min"] == 0.0 and s["p50"] == 0.0


class TestSinkFolding:
    def _registry_after(self, events) -> MetricsRegistry:
        reg = MetricsRegistry()
        sink = MetricsSink(reg)
        for e in events:
            sink.handle(e)
        return reg

    def test_trials_and_failures(self):
        reg = self._registry_after(
            [_trial(1.0), _trial(2.0), _trial(0.0, error="crash")]
        )
        snap = reg.snapshot()
        assert snap["evaluations"] == 3.0
        assert snap["failures"] == 1.0
        assert snap["failure_rate"] == pytest.approx(1 / 3)
        # failed trials do not pollute the runtime distribution
        assert snap["trial_runtime.count"] == 2.0
        assert snap["trial_runtime.mean"] == pytest.approx(1.5)

    def test_cache_hit_ratio(self):
        reg = self._registry_after(
            [CacheHit(key="a"), CacheHit(key="a"), CacheHit(key="b"), CacheMiss(key="c")]
        )
        assert reg.snapshot()["cache_hit_ratio"] == pytest.approx(0.75)

    def test_worker_and_pool_events(self):
        reg = self._registry_after(
            [
                WorkerCrashed(error="segv", reason="crash"),
                WorkerCrashed(error="slow", reason="timeout"),
                PoolRebuilt(reason="crash"),
            ]
        )
        snap = reg.snapshot()
        assert snap["worker_crashes"] == 1.0
        assert snap["worker_timeouts"] == 1.0
        assert snap["pool_rebuilds"] == 1.0

    def test_surrogate_and_span_histograms(self):
        reg = self._registry_after(
            [
                SurrogateFitted(n_samples=10, wall_time=0.25),
                SpanClosed(name="fit", wall_time=0.3, virtual_time=None),
                SpanClosed(name="measure", wall_time=0.1, virtual_time=5.0),
            ]
        )
        snap = reg.snapshot()
        assert snap["surrogate_fits"] == 1.0
        assert snap["surrogate_fit_time.mean"] == pytest.approx(0.25)
        assert snap["span.fit.wall.count"] == 1.0
        assert snap["span.measure.virtual.mean"] == pytest.approx(5.0)
        assert "span.fit.virtual.count" not in snap

    def test_evaluations_per_s_positive(self):
        reg = self._registry_after([_trial()])
        assert reg.snapshot()["evaluations_per_s"] > 0.0


class TestTelemetryIntegration:
    def test_telemetry_auto_subscribes_metrics(self):
        tel = Telemetry()
        tel.emit(_trial())
        tel.emit(CacheHit(key="k"))
        snap = tel.metrics.snapshot()
        assert snap["evaluations"] == 1.0 and snap["cache_hits"] == 1.0

    def test_format_metrics_summary(self):
        tel = Telemetry()
        tel.emit(_trial())
        tel.emit(_trial(error="boom"))
        tel.emit(CacheHit(key="k"))
        tel.emit(CacheMiss(key="m"))
        line = format_metrics_summary(tel.metrics)
        assert line.startswith("telemetry: 2 evals")
        assert "failure rate 50.0%" in line
        assert "cache hit ratio 50.0%" in line

    def test_summary_omits_zero_sections(self):
        tel = Telemetry()
        tel.emit(_trial())
        line = format_metrics_summary(tel.metrics)
        assert "cache" not in line and "crash" not in line
