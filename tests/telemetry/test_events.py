"""Event bus: ordered delivery, fan-out, and sink fault isolation."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    EventBus,
    NullTelemetry,
    RecordingSink,
    RunFinished,
    RunStarted,
    Sink,
    Telemetry,
    TrialMeasured,
    get_telemetry,
    make_run_id,
    set_telemetry,
    telemetry_session,
)


def _started(run_id: str = "lu:large:ytopt:seed0") -> RunStarted:
    return RunStarted(
        run_id=run_id,
        kernel="lu",
        size_name="large",
        tuner="ytopt",
        seed=0,
        max_evals=3,
    )


def _trial(rt: float = 1.0) -> TrialMeasured:
    return TrialMeasured(
        config={"P0": 10, "P1": 20}, runtime=rt, compile_time=0.5, elapsed=rt + 1
    )


def _finished(run_id: str = "lu:large:ytopt:seed0") -> RunFinished:
    return RunFinished(
        run_id=run_id,
        best_runtime=1.0,
        best_config={"P0": 10},
        n_evals=3,
        total_time=9.0,
    )


class FailingSink(Sink):
    def __init__(self, fail_first_n: int = 10**9) -> None:
        self.fail_first_n = fail_first_n
        self.calls = 0
        self.received = []

    def handle(self, event):
        self.calls += 1
        if self.calls <= self.fail_first_n:
            raise RuntimeError("disk full")
        self.received.append(event)


class TestOrdering:
    def test_events_delivered_in_emission_order(self):
        bus = EventBus()
        a, b = RecordingSink(), RecordingSink()
        bus.subscribe(a)
        bus.subscribe(b)
        events = [_started(), _trial(1.0), _trial(2.0), _finished()]
        for e in events:
            bus.emit(e)
        assert a.events == events
        assert b.events == events
        assert a.kinds() == [
            "run_started",
            "trial_measured",
            "trial_measured",
            "run_finished",
        ]

    def test_ts_stamped_monotonically(self):
        bus = EventBus()
        sink = RecordingSink()
        bus.subscribe(sink)
        for _ in range(5):
            bus.emit(_trial())
        stamps = [e.ts for e in sink.events]
        assert all(s is not None for s in stamps)
        assert stamps == sorted(stamps)

    def test_to_dict_has_kind_and_fields(self):
        bus = EventBus()
        sink = RecordingSink()
        bus.subscribe(sink)
        bus.emit(_started())
        d = sink.events[0].to_dict()
        assert d["event"] == "run_started"
        assert d["kernel"] == "lu" and d["tuner"] == "ytopt"
        assert "ts" in d


class TestSinkFaultIsolation:
    def test_failing_sink_never_stops_delivery(self):
        bus = EventBus()
        bad, good = FailingSink(), RecordingSink()
        bus.subscribe(bad)
        bus.subscribe(good)
        for i in range(10):
            bus.emit(_trial(float(i)))
        assert len(good.events) == 10  # healthy sink saw everything
        assert bus.sink_errors  # failures were recorded, not raised

    def test_sink_quarantined_after_max_failures(self):
        bus = EventBus(max_sink_failures=3)
        bad = FailingSink()
        bus.subscribe(bad)
        for _ in range(10):
            bus.emit(_trial())
        assert bad.calls == 3  # no deliveries after quarantine
        assert bad in bus.quarantined()

    def test_transiently_failing_sink_survives_below_threshold(self):
        bus = EventBus(max_sink_failures=5)
        flaky = FailingSink(fail_first_n=3)
        bus.subscribe(flaky)
        for _ in range(10):
            bus.emit(_trial())
        assert flaky not in bus.quarantined()
        assert len(flaky.received) == 7

    def test_failing_close_is_isolated(self):
        class BadClose(RecordingSink):
            def close(self):
                raise OSError("already closed")

        bus = EventBus()
        bus.subscribe(BadClose())
        ok = RecordingSink()
        closed = []
        ok.close = lambda: closed.append(True)  # type: ignore[method-assign]
        bus.subscribe(ok)
        bus.close()  # must not raise
        assert closed == [True]

    def test_sink_failure_does_not_kill_a_search(self):
        """A broken sink under a live tuner run: the search still finishes."""
        from repro.experiments import run_tuner
        from repro.kernels import get_benchmark

        tel = Telemetry(sinks=[FailingSink()])
        with telemetry_session(tel):
            run = run_tuner(get_benchmark("lu", "large"), "ytopt", max_evals=4, seed=0)
        assert run.n_evals == 4
        assert tel.bus.sink_errors


class TestContext:
    def test_default_is_null_telemetry(self):
        assert isinstance(get_telemetry(), NullTelemetry)
        assert not get_telemetry().enabled

    def test_session_installs_and_restores(self):
        tel = Telemetry()
        before = get_telemetry()
        with telemetry_session(tel) as active:
            assert active is tel
            assert get_telemetry() is tel
        assert get_telemetry() is before

    def test_session_restores_on_exception(self):
        tel = Telemetry()
        before = get_telemetry()
        with pytest.raises(ValueError):
            with telemetry_session(tel):
                raise ValueError("boom")
        assert get_telemetry() is before

    def test_set_telemetry_returns_previous(self):
        tel = Telemetry()
        prev = set_telemetry(tel)
        try:
            assert get_telemetry() is tel
        finally:
            set_telemetry(prev)

    def test_null_session(self):
        with telemetry_session(None) as tel:
            assert not tel.enabled
            tel.emit(_trial())  # no-op, no error
            with tel.span("x"):
                pass


def test_make_run_id():
    assert make_run_id("lu", "large", "ytopt", 0) == "lu:large:ytopt:seed0"
    assert make_run_id("3mm", "extralarge", "AutoTVM-GA", None).endswith("seedNone")
