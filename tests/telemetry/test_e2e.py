"""End-to-end acceptance: experiment → SQLite/JSONL → report/compare parity."""

from __future__ import annotations

import json

import pytest

from repro.experiments import run_experiment, run_tuner
from repro.experiments.figures import min_runtime_table, process_summary_table
from repro.experiments.runner import ALL_TUNERS
from repro.kernels import get_benchmark
from repro.telemetry import (
    JsonlSink,
    RunStore,
    StoreSink,
    Telemetry,
    telemetry_session,
)
from repro.telemetry.report import compare_stores, experiment_from_store, report_text


@pytest.fixture(scope="module")
def traced_experiment(tmp_path_factory):
    """One 5-tuner experiment with full telemetry, shared across tests."""
    root = tmp_path_factory.mktemp("e2e")
    db = root / "runs.sqlite"
    trace = root / "trace.jsonl"
    tel = Telemetry(
        sinks=[JsonlSink(trace), StoreSink(RunStore(db), own_store=True)]
    )
    with telemetry_session(tel):
        result = run_experiment("lu", "large", tuners=ALL_TUNERS, max_evals=6, seed=0)
    tel.close()
    return result, db, trace


class TestStoreMatchesInProcess:
    def test_all_five_tuners_persisted(self, traced_experiment):
        result, db, _ = traced_experiment
        with RunStore(db) as store:
            stored = store.runs()
        assert {r.tuner for r in stored} == set(ALL_TUNERS)
        assert len(result.runs) == len(stored) == 5

    def test_headline_numbers_match_exactly(self, traced_experiment):
        result, db, _ = traced_experiment
        with RunStore(db) as store:
            rebuilt = experiment_from_store(store, "lu", "large")
        for tuner, live in result.runs.items():
            run = rebuilt.runs[tuner]
            assert run.best_runtime == live.best_runtime
            assert run.best_config == live.best_config
            assert run.n_evals == live.n_evals
            assert run.total_time == live.total_time
            assert run.trajectory == live.trajectory

    def test_report_tables_byte_identical(self, traced_experiment):
        """Acceptance: `repro report` from disk == the in-process tables."""
        result, db, _ = traced_experiment
        with RunStore(db) as store:
            rebuilt = experiment_from_store(store, "lu", "large")
            text = report_text(store, kernel="lu", size_name="large")
        assert min_runtime_table(rebuilt) == min_runtime_table(result)
        assert process_summary_table(rebuilt) == process_summary_table(result)
        assert min_runtime_table(result) in text
        assert process_summary_table(result) in text

    def test_run_metadata_recorded(self, traced_experiment):
        _, db, _ = traced_experiment
        with RunStore(db) as store:
            run = store.get_run("lu", "large", "ytopt", 0)
        meta = run.metadata
        assert meta["seed"] == 0
        assert meta["max_evals"] == 6
        assert isinstance(meta["git_sha"], str) and meta["git_sha"]
        assert meta["repro_version"]
        assert meta["python"] and meta["platform"] and meta["numpy"]


class TestTrace:
    def test_jsonl_trace_well_formed(self, traced_experiment):
        result, _, trace = traced_experiment
        events = [json.loads(line) for line in trace.read_text().splitlines()]
        kinds = [e["event"] for e in events]
        assert kinds.count("run_started") == 5
        assert kinds.count("run_finished") == 5
        total_evals = sum(r.n_evals for r in result.runs.values())
        assert kinds.count("trial_measured") == total_evals
        assert all("ts" in e for e in events)

    def test_spans_nest_under_tuner_run(self, traced_experiment):
        _, _, trace = traced_experiment
        spans = [
            json.loads(line)
            for line in trace.read_text().splitlines()
            if json.loads(line)["event"] == "span_closed"
        ]
        tuner_runs = [s for s in spans if s["name"] == "tuner_run"]
        assert len(tuner_runs) == 5
        assert all(s["depth"] == 0 for s in tuner_runs)
        nested = [s for s in spans if s["parent"] == "tuner_run"]
        assert nested  # measure/acquisition spans charged inside the run
        assert all(s["depth"] == 1 for s in nested)
        # virtual-clock accounting: the tuner_run span carries simulated time
        assert all(s["virtual_time"] > 0 for s in tuner_runs)

    def test_events_bracket_each_run(self, traced_experiment):
        _, _, trace = traced_experiment
        open_run = None
        for line in trace.read_text().splitlines():
            e = json.loads(line)
            if e["event"] == "run_started":
                assert open_run is None
                open_run = e["run_id"]
            elif e["event"] == "run_finished":
                assert e["run_id"] == open_run
                open_run = None
        assert open_run is None


class TestCompareRegression:
    def test_injected_regression_flagged(self, traced_experiment):
        """Acceptance: `repro compare` flags an injected >=10% regression."""
        import shutil
        import sqlite3

        _, db, _ = traced_experiment
        worse = db.parent / "worse.sqlite"
        shutil.copy(db, worse)
        conn = sqlite3.connect(worse)
        conn.execute(
            "UPDATE runs SET best_runtime = best_runtime * 1.15 WHERE tuner='ytopt'"
        )
        conn.commit()
        conn.close()

        with RunStore(db) as base, RunStore(worse) as cand:
            text, regressed = compare_stores(base, cand, threshold=0.10)
        assert len(regressed) == 1
        assert regressed[0].tuner == "ytopt"
        assert regressed[0].best_change == pytest.approx(0.15)
        assert "REGRESSION" in text

    def test_identical_stores_no_regression(self, traced_experiment):
        _, db, _ = traced_experiment
        with RunStore(db) as base, RunStore(db.parent / "runs.sqlite") as cand:
            _, regressed = compare_stores(base, cand, threshold=0.10)
        assert regressed == []


class TestNoTelemetryParity:
    @pytest.mark.parametrize("tuner", ["ytopt", "AutoTVM-GA"])
    def test_trajectories_byte_identical(self, tmp_path, tuner):
        """Acceptance: telemetry on vs off changes nothing about the search."""
        benchmark = get_benchmark("lu", "large")

        plain = run_tuner(benchmark, tuner, max_evals=6, seed=0)

        tel = Telemetry(
            sinks=[
                JsonlSink(tmp_path / "t.jsonl"),
                StoreSink(RunStore(tmp_path / "r.sqlite"), own_store=True),
            ]
        )
        with telemetry_session(tel):
            traced = run_tuner(benchmark, tuner, max_evals=6, seed=0)
        tel.close()

        assert traced.trajectory == plain.trajectory
        assert traced.best_config == plain.best_config
        assert traced.best_runtime == plain.best_runtime
        assert traced.total_time == plain.total_time
