"""`repro report` / `repro compare`: reconstruction, golden output, diffing."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.common.errors import ReproError
from repro.telemetry import RunFinished, RunStarted, RunStore, TrialMeasured, make_run_id
from repro.telemetry.report import (
    compare_stores,
    evals_to_best_table,
    evals_to_within,
    evaluation_count_table,
    experiment_from_store,
    report_text,
)

GOLDEN = Path(__file__).parent / "golden_report.txt"


def _save(store: RunStore, kernel, size, tuner, seed, best, total, trials) -> None:
    started = RunStarted(
        run_id=make_run_id(kernel, size, tuner, seed),
        kernel=kernel,
        size_name=size,
        tuner=tuner,
        seed=seed,
        max_evals=len(trials),
        metadata={"seed": seed},
    )
    finished = RunFinished(
        run_id=started.run_id,
        best_runtime=best,
        best_config={"P0": 16, "P1": 8},
        n_evals=len(trials),
        total_time=total,
    )
    store.save_run(started, finished, trials)


def _trial(runtime, elapsed, error=None, cache_hit=False) -> TrialMeasured:
    return TrialMeasured(
        config={"P0": 16},
        runtime=runtime,
        compile_time=0.5,
        elapsed=elapsed,
        error=error,
        cache_hit=cache_hit,
    )


def build_golden_store(path) -> RunStore:
    """A fixed two-tuner store; every number below is hand-chosen, so the
    rendered report is fully deterministic (no clocks, no RNG)."""
    store = RunStore(path)
    _save(
        store,
        "lu",
        "large",
        "ytopt",
        0,
        best=0.0123,
        total=45.6,
        trials=[
            _trial(0.05, 10.0),
            _trial(1e10, 20.0, error="validation failed"),
            _trial(0.0123, 45.6, cache_hit=True),
        ],
    )
    _save(
        store,
        "lu",
        "large",
        "AutoTVM-GA",
        0,
        best=0.0456,
        total=78.9,
        trials=[
            _trial(0.09, 30.0),
            _trial(0.0456, 78.9),
        ],
    )
    return store


class TestReconstruction:
    def test_experiment_from_store_shape(self, tmp_path):
        with build_golden_store(tmp_path / "g.sqlite") as store:
            result = experiment_from_store(store, "lu", "large")
        assert set(result.runs) == {"ytopt", "AutoTVM-GA"}
        assert result.max_evals == 3
        ytopt = result.runs["ytopt"]
        assert ytopt.best_runtime == 0.0123
        assert ytopt.total_time == 45.6
        # ytopt keeps FAILED_COST in its trajectory, as the live database does
        assert ytopt.trajectory == [(10.0, 0.05), (20.0, 1e10), (45.6, 0.0123)]

    def test_autotvm_failures_become_inf(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            _save(
                store,
                "lu",
                "large",
                "AutoTVM-GA",
                0,
                best=1.0,
                total=5.0,
                trials=[_trial(1.0, 2.0), _trial(9.9, 5.0, error="crash")],
            )
            run = experiment_from_store(store, "lu", "large").runs["AutoTVM-GA"]
        assert run.trajectory == [(2.0, 1.0), (5.0, float("inf"))]

    def test_missing_experiment_raises(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            with pytest.raises(ReproError, match="no stored runs"):
                experiment_from_store(store, "lu", "large")
            with pytest.raises(ReproError, match="no stored runs"):
                report_text(store)


class TestGoldenReport:
    def test_report_matches_golden_file(self, tmp_path):
        """Golden-file test: the full `repro report` text is stable.

        Regenerate after an intentional format change with:
            PYTHONPATH=src:tests python -c "
            from telemetry.test_report import regenerate_golden; regenerate_golden()"
        """
        with build_golden_store(tmp_path / "g.sqlite") as store:
            text = report_text(store)
        assert text == GOLDEN.read_text()

    def test_report_filters(self, tmp_path):
        with build_golden_store(tmp_path / "g.sqlite") as store:
            _save(store, "cholesky", "large", "ytopt", 0, 1.0, 2.0, [_trial(1.0, 2.0)])
            full = report_text(store)
            only_lu = report_text(store, kernel="lu")
            assert "cholesky" in full and "cholesky" not in only_lu
            with pytest.raises(ReproError):
                report_text(store, kernel="nope")

    def test_evaluation_count_table_columns(self, tmp_path):
        with build_golden_store(tmp_path / "g.sqlite") as store:
            text = evaluation_count_table(store, "lu", "large")
        lines = text.splitlines()
        ytopt_row = next(l for l in lines if "ytopt" in l)
        # 3 evals, 1 failure, 1 cache hit, 0 pruned, 0 promoted, no backend
        # recorded ("-"), seed 0
        assert ytopt_row.split()[-7:] == ["3", "1", "1", "0", "0", "-", "0"]


def regenerate_golden() -> None:  # pragma: no cover - maintenance helper
    import tempfile

    with tempfile.TemporaryDirectory() as d:
        with build_golden_store(Path(d) / "g.sqlite") as store:
            GOLDEN.write_text(report_text(store))


class TestCompare:
    def _stores(self, tmp_path, candidate_best, candidate_time=45.6):
        base = RunStore(tmp_path / "base.sqlite")
        cand = RunStore(tmp_path / "cand.sqlite")
        _save(base, "lu", "large", "ytopt", 0, 1.0, 45.6, [])
        _save(cand, "lu", "large", "ytopt", 0, candidate_best, candidate_time, [])
        return base, cand

    def test_regression_flagged_at_threshold(self, tmp_path):
        base, cand = self._stores(tmp_path, candidate_best=1.2)
        text, regressed = compare_stores(base, cand, threshold=0.10)
        assert len(regressed) == 1
        assert regressed[0].best_change == pytest.approx(0.2)
        assert "REGRESSION" in text and "+20.0%" in text

    def test_improvement_and_small_drift_pass(self, tmp_path):
        base, cand = self._stores(tmp_path, candidate_best=1.05)
        text, regressed = compare_stores(base, cand, threshold=0.10)
        assert regressed == []
        assert "ok" in text and "REGRESSION" not in text

    def test_process_time_regression_also_flags(self, tmp_path):
        base, cand = self._stores(tmp_path, candidate_best=1.0, candidate_time=60.0)
        _, regressed = compare_stores(base, cand, threshold=0.10)
        assert len(regressed) == 1
        assert regressed[0].time_change == pytest.approx((60.0 - 45.6) / 45.6)

    def test_unmatched_runs_listed_not_flagged(self, tmp_path):
        base, cand = self._stores(tmp_path, candidate_best=1.0)
        _save(base, "cholesky", "large", "ytopt", 0, 1.0, 1.0, [])
        _save(cand, "lu", "large", "AutoTVM-GA", 0, 1.0, 1.0, [])
        text, regressed = compare_stores(base, cand)
        assert regressed == []
        assert "only in baseline: cholesky" in text
        assert "only in candidate: lu:large:AutoTVM-GA" in text

    def test_bad_threshold_rejected(self, tmp_path):
        base, cand = self._stores(tmp_path, candidate_best=1.0)
        with pytest.raises(ReproError, match="threshold"):
            compare_stores(base, cand, threshold=0.0)


class TestEvalsToWithin:
    def test_counts_first_banded_eval_one_based(self):
        traj = [(1.0, 5.0), (2.0, 2.0), (3.0, 1.04), (4.0, 0.9)]
        assert evals_to_within(traj, target=1.0, tolerance=0.05) == 3

    def test_best_so_far_not_instantaneous(self):
        # A later slow eval does not un-hit the band.
        traj = [(1.0, 1.0), (2.0, 50.0)]
        assert evals_to_within(traj, target=1.0) == 1

    def test_never_reaching_returns_none(self):
        assert evals_to_within([(1.0, 9.0), (2.0, 8.0)], target=1.0) is None

    def test_empty_trajectory_never_reaches(self):
        assert evals_to_within([], target=1.0) is None

    def test_zero_tolerance_demands_the_target_itself(self):
        traj = [(1.0, 1.0001), (2.0, 1.0)]
        assert evals_to_within(traj, target=1.0, tolerance=0.0) == 2

    def test_invalid_target_and_tolerance(self):
        with pytest.raises(ReproError, match="target"):
            evals_to_within([(1.0, 1.0)], target=0.0)
        with pytest.raises(ReproError, match="target"):
            evals_to_within([(1.0, 1.0)], target=float("inf"))
        with pytest.raises(ReproError, match="tolerance"):
            evals_to_within([(1.0, 1.0)], target=1.0, tolerance=-0.1)


class TestEvalsToBestTable:
    def test_table_anchors_on_cross_tuner_best(self, tmp_path):
        with build_golden_store(tmp_path / "g.sqlite") as store:
            text = evals_to_best_table(store, "lu", "large")
        lines = text.splitlines()
        # Known best is ytopt's 0.0123; AutoTVM-GA's best 0.0456 is far
        # outside the 5% band -> "never".
        assert "0.0123" in lines[0]
        ytopt_row = next(l for l in lines if l.startswith("ytopt"))
        autotvm_row = next(l for l in lines if l.startswith("AutoTVM-GA"))
        assert ytopt_row.split()[-2] == "3"
        assert autotvm_row.split()[-2] == "never"

    def test_missing_runs_raise(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            with pytest.raises(ReproError, match="no stored runs"):
                evals_to_best_table(store, "lu", "large")

    def test_report_text_unchanged_unless_opted_in(self, tmp_path):
        with build_golden_store(tmp_path / "g.sqlite") as store:
            plain = report_text(store)
            banded = report_text(store, to_best=True)
        assert plain == GOLDEN.read_text()  # default output untouched
        assert "Evals to within" not in plain
        assert "Evals to within" in banded


class TestOverheadBreakdown:
    def test_derived_fallback_from_evaluation_rows(self, tmp_path):
        """Runs without engine-stamped overhead derive the split from the
        stored evaluations and say so in the mode column."""
        from repro.telemetry.report import overhead_breakdown_table

        with build_golden_store(tmp_path / "g.sqlite") as store:
            text = overhead_breakdown_table(store, "lu", "large")
        assert "Overhead breakdown" in text
        ytopt_row = next(l for l in text.splitlines() if "ytopt" in l)
        assert "derived" in ytopt_row

    def test_engine_stamp_round_trips_through_the_store(self, tmp_path):
        """RunFinished.overhead lands in the run metadata and wins over the
        derived fallback, pipeline counters included."""
        from repro.telemetry.report import overhead_breakdown_table

        overhead = {
            "mode": "pipelined",
            "search_seconds": 1.0,
            "compile_seconds": 2.0,
            "measure_seconds": 3.0,
            "wall_seconds": 6.5,
            "spec_hit_rate": 0.75,
        }
        with RunStore(tmp_path / "o.sqlite") as store:
            started = RunStarted(
                run_id=make_run_id("lu", "large", "ytopt", 0),
                kernel="lu", size_name="large", tuner="ytopt", seed=0,
                max_evals=2, metadata={"seed": 0},
            )
            finished = RunFinished(
                run_id=started.run_id, best_runtime=1.0,
                best_config={"P0": 16}, n_evals=2, total_time=6.5,
                overhead=overhead,
            )
            store.save_run(started, finished, [_trial(1.0, 1.0), _trial(1.2, 2.0)])
            run = store.runs(kernel="lu", size_name="large")[0]
            assert run.metadata["overhead_breakdown"] == overhead
            text = overhead_breakdown_table(store, "lu", "large")
        row = next(l for l in text.splitlines() if "ytopt" in l)
        assert "pipelined (hit 75%)" in row
        assert "6.50" in row

    def test_report_text_opt_in(self, tmp_path):
        with build_golden_store(tmp_path / "g.sqlite") as store:
            plain = report_text(store)
            with_overhead = report_text(store, overhead=True)
        assert "Overhead breakdown" not in plain
        assert "Overhead breakdown" in with_overhead
