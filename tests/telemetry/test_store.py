"""SQLite run store: round-trip, identity upsert, StoreSink bracketing."""

from __future__ import annotations

import pytest

from repro.common.errors import ReproError
from repro.telemetry import (
    EventBus,
    RunFinished,
    RunStarted,
    RunStore,
    StoreSink,
    TrialMeasured,
    make_run_id,
)


def _started(
    kernel="lu", size="large", tuner="ytopt", seed=0, metadata=None
) -> RunStarted:
    return RunStarted(
        run_id=make_run_id(kernel, size, tuner, seed),
        kernel=kernel,
        size_name=size,
        tuner=tuner,
        seed=seed,
        max_evals=3,
        metadata=metadata or {"seed": seed, "git_sha": "abc123"},
    )


def _finished(started: RunStarted, best=1.5, total=9.0) -> RunFinished:
    return RunFinished(
        run_id=started.run_id,
        best_runtime=best,
        best_config={"P0": 16, "P1": 8},
        n_evals=3,
        total_time=total,
    )


def _trials():
    return [
        TrialMeasured(config={"P0": 4}, runtime=2.0, compile_time=0.2, elapsed=3.0),
        TrialMeasured(
            config={"P0": 8},
            runtime=1e10,
            compile_time=0.1,
            elapsed=5.0,
            error="validation failed",
        ),
        TrialMeasured(
            config={"P0": 16},
            runtime=1.5,
            compile_time=0.0,
            elapsed=9.0,
            cache_hit=True,
        ),
    ]


class TestRoundTrip:
    def test_write_reopen_read(self, tmp_path):
        """The acceptance path: write in one connection, read in a fresh one."""
        path = tmp_path / "runs.sqlite"
        started = _started()
        with RunStore(path) as store:
            store.save_run(started, _finished(started), _trials())

        with RunStore(path) as store:
            runs = store.runs()
            assert len(runs) == 1
            run = runs[0]
            assert run.run_id == "lu:large:ytopt:seed0"
            assert (run.kernel, run.size_name, run.tuner, run.seed) == (
                "lu",
                "large",
                "ytopt",
                0,
            )
            assert run.best_runtime == 1.5
            assert run.best_config == {"P0": 16, "P1": 8}
            assert run.n_evals == 3 and run.total_time == 9.0
            assert run.metadata["git_sha"] == "abc123"

            evals = store.evaluations(run.run_id)
            assert [e.index for e in evals] == [0, 1, 2]
            assert evals[0].config == {"P0": 4}
            assert evals[1].error == "validation failed" and not evals[1].ok
            assert evals[2].cache_hit and evals[2].ok
            assert [e.elapsed for e in evals] == [3.0, 5.0, 9.0]

    def test_get_run_and_missing(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            started = _started()
            store.save_run(started, _finished(started), [])
            assert store.get_run("lu", "large", "ytopt", 0).best_runtime == 1.5
            with pytest.raises(ReproError, match="no stored run"):
                store.get_run("lu", "large", "ytopt", 99)

    def test_experiments_listing(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            for kernel, size in [("lu", "large"), ("lu", "extralarge"), ("3mm", "large")]:
                s = _started(kernel=kernel, size=size)
                store.save_run(s, _finished(s), [])
            assert store.experiments() == [
                ("3mm", "large"),
                ("lu", "extralarge"),
                ("lu", "large"),
            ]

    def test_parent_directory_created(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "runs.sqlite"
        with RunStore(path) as store:
            assert path.exists()
            assert store.runs() == []


class TestIdentityUpsert:
    def test_rerun_replaces_same_identity(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            s = _started()
            store.save_run(s, _finished(s, best=2.0), _trials())
            store.save_run(s, _finished(s, best=1.0), _trials()[:1])
            runs = store.runs()
            assert len(runs) == 1
            assert runs[0].best_runtime == 1.0
            assert len(store.evaluations(runs[0].run_id)) == 1  # old trials gone

    def test_different_seeds_accumulate(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            for seed in (0, 1, 2):
                s = _started(seed=seed)
                store.save_run(s, _finished(s), [])
            assert len(store.runs()) == 3

    def test_runs_filtering(self, tmp_path):
        with RunStore(tmp_path / "r.sqlite") as store:
            for tuner in ("ytopt", "AutoTVM-GA"):
                s = _started(tuner=tuner)
                store.save_run(s, _finished(s), [])
            assert len(store.runs(tuner="ytopt")) == 1
            assert len(store.runs(kernel="lu")) == 2
            assert store.runs(kernel="nope") == []


class TestStoreSink:
    def test_buffers_and_commits_on_finished(self, tmp_path):
        store = RunStore(tmp_path / "r.sqlite")
        sink = StoreSink(store, own_store=False)
        bus = EventBus()
        bus.subscribe(sink)

        started = _started()
        bus.emit(started)
        for t in _trials():
            bus.emit(t)
        assert store.runs() == []  # nothing written before the run closes
        bus.emit(_finished(started))
        assert sink.runs_saved == 1
        run = store.runs()[0]
        assert len(store.evaluations(run.run_id)) == 3
        store.close()

    def test_orphan_trials_ignored(self, tmp_path):
        store = RunStore(tmp_path / "r.sqlite")
        sink = StoreSink(store, own_store=False)
        sink.handle(
            TrialMeasured(config={"P0": 1}, runtime=1.0, compile_time=0.0, elapsed=1.0)
        )
        started = _started()
        sink.handle(started)
        sink.handle(_finished(started))
        run = store.runs()[0]
        assert store.evaluations(run.run_id) == []  # pre-run trial not attributed
        store.close()

    def test_unfinished_run_never_written(self, tmp_path):
        store = RunStore(tmp_path / "r.sqlite")
        sink = StoreSink(store, own_store=False)
        sink.handle(_started())
        for t in _trials():
            sink.handle(t)
        sink.close()  # own_store=False: close is a no-op on the store
        assert store.runs() == []  # crashed search leaves no half-written run
        store.close()

    def test_own_store_closed_with_sink(self, tmp_path):
        store = RunStore(tmp_path / "r.sqlite")
        StoreSink(store, own_store=True).close()
        with pytest.raises(Exception):
            store.runs()
