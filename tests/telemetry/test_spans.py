"""Tracing spans: nesting, wall-clock vs virtual-clock accounting."""

from __future__ import annotations

from repro.common.timing import VirtualClock
from repro.telemetry import SpanClosed, Telemetry, Tracer
from repro.telemetry.sinks import RecordingSink


class TestNesting:
    def test_depth_and_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                with tracer.span("leaf"):
                    assert tracer.depth == 3
        names = {s.name: s for s in tracer.completed}
        assert names["outer"].depth == 0 and names["outer"].parent is None
        assert names["inner"].depth == 1 and names["inner"].parent == "outer"
        assert names["leaf"].depth == 2 and names["leaf"].parent == "inner"

    def test_completion_order_is_innermost_first(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        assert [s.name for s in tracer.completed] == ["b", "a"]

    def test_exception_still_closes_span(self):
        tracer = Tracer()
        try:
            with tracer.span("x"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert tracer.depth == 0
        assert [s.name for s in tracer.completed] == ["x"]

    def test_sibling_spans_share_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("s1"):
                pass
            with tracer.span("s2"):
                pass
        s1, s2 = tracer.completed[0], tracer.completed[1]
        assert (s1.parent, s2.parent) == ("parent", "parent")
        assert s1.depth == s2.depth == 1


class TestClockAccounting:
    def test_virtual_time_is_clock_delta(self):
        tracer = Tracer()
        clock = VirtualClock()
        with tracer.span("measure", clock=clock):
            clock.advance(12.5)
        span = tracer.completed[0]
        assert span.virtual_time == 12.5
        assert span.wall_time >= 0.0
        # Virtual seconds are simulated; they must not be mistaken for wall
        # time — a 12.5-virtual-second span completes in microseconds.
        assert span.wall_time < 1.0

    def test_no_clock_means_no_virtual_time(self):
        tracer = Tracer()
        with tracer.span("compile"):
            pass
        assert tracer.completed[0].virtual_time is None

    def test_nested_spans_charge_virtual_time_independently(self):
        tracer = Tracer()
        clock = VirtualClock()
        with tracer.span("outer", clock=clock):
            clock.advance(1.0)
            with tracer.span("inner", clock=clock):
                clock.advance(2.0)
            clock.advance(3.0)
        inner, outer = tracer.completed
        assert inner.virtual_time == 2.0
        assert outer.virtual_time == 6.0  # inner's advance is nested inside

    def test_wall_time_measures_real_elapsed(self):
        import time

        tracer = Tracer()
        with tracer.span("sleepy"):
            time.sleep(0.02)
        assert tracer.completed[0].wall_time >= 0.015


class TestEmission:
    def test_spans_emitted_to_bus(self):
        sink = RecordingSink()
        tel = Telemetry(sinks=[sink])
        clock = VirtualClock()
        with tel.span("outer", clock=clock):
            clock.advance(4.0)
        spans = [e for e in sink.events if isinstance(e, SpanClosed)]
        assert len(spans) == 1
        assert spans[0].name == "outer" and spans[0].virtual_time == 4.0

    def test_completed_list_is_bounded(self):
        tracer = Tracer()
        tracer.max_completed = 10
        for _ in range(25):
            with tracer.span("s"):
                pass
        assert len(tracer.completed) == 10
