"""Tests for the experiment runner — the paper's qualitative claims in small.

Full 100-eval runs live in the benchmark harness; here reduced budgets verify
the machinery and the headline orderings the paper reports.
"""

import pytest

from repro.common.errors import TuningError
from repro.experiments import ALL_TUNERS, run_experiment, run_tuner
from repro.kernels import get_benchmark


@pytest.fixture(scope="module")
def lu_large_result():
    # One shared 5-tuner run at a reduced budget (still exercises everything).
    return run_experiment("lu", "large", max_evals=30, seed=1)


class TestRunTuner:
    @pytest.mark.parametrize("tuner", ALL_TUNERS)
    def test_each_tuner_runs(self, tuner):
        bench = get_benchmark("cholesky", "large")
        run = run_tuner(bench, tuner, max_evals=12, seed=0)
        assert run.tuner == tuner
        assert 1 <= run.n_evals <= 12
        assert run.best_runtime > 0
        assert run.total_time > 0
        assert len(run.trajectory) == run.n_evals

    def test_unknown_tuner_rejected(self):
        bench = get_benchmark("lu", "large")
        with pytest.raises(TuningError):
            run_tuner(bench, "AutoTVM-Annealing")

    def test_trajectory_monotone_time(self):
        bench = get_benchmark("lu", "large")
        run = run_tuner(bench, "ytopt", max_evals=10, seed=0)
        times = [t for t, _ in run.trajectory]
        assert times == sorted(times)

    def test_best_so_far_monotone(self):
        bench = get_benchmark("lu", "large")
        run = run_tuner(bench, "AutoTVM-Random", max_evals=16, seed=0)
        bsf = run.best_so_far()
        assert all(a >= b for a, b in zip(bsf, bsf[1:]))

    def test_deterministic_given_seed(self):
        bench = get_benchmark("lu", "large")
        r1 = run_tuner(bench, "ytopt", max_evals=10, seed=5)
        r2 = run_tuner(bench, "ytopt", max_evals=10, seed=5)
        assert r1.best_config == r2.best_config
        assert r1.total_time == r2.total_time


class TestPaperClaims:
    def test_all_five_tuners_present(self, lu_large_result):
        assert set(lu_large_result.runs) == set(ALL_TUNERS)

    def test_gridsearch_worst_best_runtime(self, lu_large_result):
        """Paper: 'grid search tuner performed the worst for all experiments'."""
        by_best = sorted(
            lu_large_result.runs.values(), key=lambda r: r.best_runtime
        )
        assert by_best[-1].tuner == "AutoTVM-GridSearch"

    def test_ytopt_process_time_among_fastest(self, lu_large_result):
        """Paper: ytopt took the smallest autotuning process time (XGB runs
        fewer evals when capped, so compare against full-budget tuners)."""
        full = [r for r in lu_large_result.runs.values() if r.tuner != "AutoTVM-XGB"]
        fastest = min(full, key=lambda r: r.total_time)
        assert fastest.tuner == "ytopt"

    def test_xgb_cap_enforced(self):
        result = run_experiment(
            "cholesky", "large", tuners=("AutoTVM-XGB",), max_evals=100, seed=0
        )
        assert result.runs["AutoTVM-XGB"].n_evals == 56

    def test_xgb_cap_can_be_lifted(self):
        result = run_experiment(
            "cholesky",
            "large",
            tuners=("AutoTVM-XGB",),
            max_evals=70,
            seed=0,
            xgb_trial_cap=None,
        )
        assert result.runs["AutoTVM-XGB"].n_evals == 70

    def test_winner_and_fastest_accessors(self, lu_large_result):
        w = lu_large_result.winner()
        assert w.best_runtime == min(
            r.best_runtime for r in lu_large_result.runs.values()
        )
        f = lu_large_result.fastest_process()
        assert f.total_time == min(
            r.total_time for r in lu_large_result.runs.values()
        )

    def test_model_guided_beats_grid_on_3mm(self):
        result = run_experiment(
            "3mm",
            "large",
            tuners=("ytopt", "AutoTVM-GridSearch"),
            max_evals=25,
            seed=0,
        )
        assert (
            result.runs["ytopt"].best_runtime
            < result.runs["AutoTVM-GridSearch"].best_runtime
        )
