"""Tests for the multi-seed statistics module."""

import math

import pytest

from repro.common.errors import TuningError
from repro.experiments.runner import TunerRun
from repro.experiments.stats import (
    MultiSeedStudy,
    area_under_best_curve,
    run_multi_seed_study,
)


def _run(tuner, best, total, trajectory=None):
    return TunerRun(
        tuner=tuner,
        kernel="lu",
        size_name="large",
        best_config={"P0": 1, "P1": 1},
        best_runtime=best,
        n_evals=len(trajectory) if trajectory else 1,
        total_time=total,
        trajectory=trajectory or [(total, best)],
    )


def _study():
    s = MultiSeedStudy(kernel="lu", size_name="large", max_evals=10)
    s.runs = {
        "A": [_run("A", 1.0, 100.0), _run("A", 2.0, 110.0)],
        "B": [_run("B", 1.5, 50.0), _run("B", 1.8, 60.0)],
        "C": [_run("C", 3.0, 200.0), _run("C", 4.0, 210.0)],
    }
    return s


class TestAreaUnderBestCurve:
    def test_early_finder_scores_lower(self):
        early = _run("e", 1.0, 100.0, [(10.0, 1.0), (100.0, 5.0)])
        late = _run("l", 1.0, 100.0, [(10.0, 5.0), (100.0, 1.0)])
        assert area_under_best_curve(early) < area_under_best_curve(late)

    def test_single_point(self):
        run = _run("s", 2.0, 10.0, [(10.0, 2.0)])
        assert area_under_best_curve(run) == pytest.approx(math.log10(2.0))

    def test_no_success_rejected(self):
        run = _run("f", float("inf"), 10.0, [(10.0, float("inf"))])
        with pytest.raises(TuningError):
            area_under_best_curve(run)


class TestMultiSeedStudy:
    def test_mean_best(self):
        assert _study().mean_best("A") == pytest.approx(1.5)

    def test_win_rate_best(self):
        s = _study()
        assert s.win_rate_best("A") == 0.5  # wins seed 0, loses seed 1 to B
        assert s.win_rate_best("B") == 0.5
        assert s.win_rate_best("C") == 0.0

    def test_win_rate_with_tolerance(self):
        s = _study()
        # Within 2x of the per-seed best, both A and B "win" every seed.
        assert s.win_rate_best("B", tolerance=2.0) == 1.0

    def test_win_rate_process_time(self):
        s = _study()
        assert s.win_rate_process_time("B") == 1.0
        assert s.win_rate_process_time("A") == 0.0

    def test_win_rate_excludes(self):
        s = _study()
        assert s.win_rate_process_time("A", exclude=["B"]) == 1.0

    def test_mean_rank(self):
        s = _study()
        assert s.mean_rank("C") == 3.0
        assert s.mean_rank("A") == pytest.approx(1.5)

    def test_worst_each_seed(self):
        assert _study().worst_tuner_each_seed() == ["C", "C"]

    def test_report_formats(self):
        out = _study().report()
        assert "mean rank" in out and "A" in out


class TestSummarizeStudies:
    def test_empty_rejected(self):
        from repro.experiments.stats import summarize_studies

        with pytest.raises(TuningError):
            summarize_studies([])

    def test_counts_on_synthetic_study(self):
        from repro.experiments.stats import summarize_studies

        s = _study()
        # rename so the claim rows are countable: make 'A' the ytopt stand-in
        s.runs["ytopt"] = s.runs.pop("A")
        s.runs["AutoTVM-GridSearch"] = s.runs.pop("C")
        out = summarize_studies([s])
        assert "2/2" in out  # GridSearch stand-in worst in both seeds


class TestRunMultiSeedStudy:
    def test_small_real_study(self):
        study = run_multi_seed_study(
            "cholesky",
            "large",
            tuners=("ytopt", "AutoTVM-GridSearch"),
            n_seeds=2,
            max_evals=12,
        )
        assert study.n_seeds == 2
        assert set(study.runs) == {"ytopt", "AutoTVM-GridSearch"}
        # GridSearch loses on quality in every seed (the paper's claim).
        assert study.win_rate_best("AutoTVM-GridSearch") == 0.0
        assert study.worst_tuner_each_seed() == ["AutoTVM-GridSearch"] * 2

    def test_validation(self):
        with pytest.raises(TuningError):
            run_multi_seed_study("lu", "large", n_seeds=0)
