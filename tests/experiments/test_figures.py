"""Tests for the figure/table formatting helpers."""

import pytest

from repro.experiments import (
    EXPERIMENT_FIGURES,
    ascii_trajectory,
    format_tensor_size,
    min_runtime_table,
    process_summary_table,
    run_experiment,
    trajectory_csv,
)


@pytest.fixture(scope="module")
def result():
    return run_experiment(
        "lu", "large", tuners=("ytopt", "AutoTVM-Random"), max_evals=10, seed=0
    )


class TestFormatTensorSize:
    def test_solver_notation(self):
        assert format_tensor_size("lu", {"P0": 400, "P1": 50}) == "400x50"

    def test_3mm_notation(self):
        cfg = {"P0": 1000, "P1": 32, "P2": 600, "P3": 2, "P4": 15, "P5": 40}
        assert format_tensor_size("3mm", cfg) == "(1000x32, 600x2, 15x40)"

    def test_unknown_kernel_fallback(self):
        assert "Pa=1" in format_tensor_size("other", {"Pa": 1})


class TestTables:
    def test_min_runtime_table_contains_all_tuners(self, result):
        out = min_runtime_table(result)
        assert "ytopt" in out and "AutoTVM-Random" in out
        assert "tensor size" in out

    def test_min_runtime_sorted_ascending(self, result):
        out = min_runtime_table(result)
        lines = [l for l in out.splitlines()[3:] if l.strip()]
        values = [float(l.split()[1]) for l in lines]
        assert values == sorted(values)

    def test_process_summary_columns(self, result):
        out = process_summary_table(result)
        assert "process time" in out
        assert "median rt" in out

    def test_trajectory_csv_rows(self, result):
        csv = trajectory_csv(result)
        lines = csv.strip().splitlines()
        assert lines[0] == "tuner,eval,elapsed_s,runtime_s"
        n_points = sum(len(r.trajectory) for r in result.runs.values())
        assert len(lines) == 1 + n_points


class TestAsciiTrajectory:
    def test_renders_grid(self, result):
        run = result.runs["ytopt"]
        out = ascii_trajectory(run, width=40, height=8)
        assert "ytopt" in out
        assert "*" in out

    def test_empty_run_handled(self):
        from repro.experiments.runner import TunerRun

        empty = TunerRun(
            tuner="x", kernel="lu", size_name="large",
            best_config={}, best_runtime=0.0, n_evals=0, total_time=0.0,
            trajectory=[],
        )
        assert "no successful evaluations" in ascii_trajectory(empty)


class TestFigureIndex:
    def test_every_paper_figure_mapped(self):
        assert set(EXPERIMENT_FIGURES) == {
            "lu-large",
            "lu-extralarge",
            "cholesky-large",
            "cholesky-extralarge",
            "3mm-extralarge",
        }

    def test_mapping_targets_valid_benchmarks(self):
        from repro.kernels import get_benchmark

        for kernel, size, _figs in EXPERIMENT_FIGURES.values():
            assert get_benchmark(kernel, size) is not None
