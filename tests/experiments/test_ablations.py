"""Tests for the ablation drivers."""

import pytest

from repro.experiments.ablations import (
    AblationRow,
    autoscheduler_comparison,
    initial_points_sweep,
    kappa_sweep,
    measure_option_ablation,
    surrogate_comparison,
)


class TestKappaSweep:
    def test_rows_labeled_and_valid(self):
        rows = kappa_sweep(kappas=(0.0, 1.96), max_evals=12, seed=0)
        assert [r.setting for r in rows] == ["kappa=0.0", "kappa=1.96"]
        assert all(r.best_runtime > 0 and r.n_evals == 12 for r in rows)


class TestSurrogateComparison:
    def test_all_three_surrogates(self):
        rows = surrogate_comparison(max_evals=12, seed=0)
        assert {r.setting for r in rows} == {
            "surrogate=rf",
            "surrogate=gbt",
            "surrogate=none",
        }

    def test_model_helps_over_none(self):
        # Averaged over a few seeds the RF surrogate should not lose to no
        # model at all on the LU landscape.
        rf_total, none_total = 0.0, 0.0
        for seed in range(3):
            rows = {r.setting: r for r in surrogate_comparison(max_evals=25, seed=seed)}
            rf_total += rows["surrogate=rf"].best_runtime
            none_total += rows["surrogate=none"].best_runtime
        assert rf_total <= none_total * 1.1


class TestInitialPointsSweep:
    def test_counts_respected(self):
        rows = initial_points_sweep(counts=(2, 10), max_evals=14, seed=0)
        assert [r.setting for r in rows] == ["n_initial=2", "n_initial=10"]


class TestAutoschedulerComparison:
    def test_two_rows_same_units(self):
        rows = autoscheduler_comparison(max_evals=12, seed=0)
        assert [r.setting for r in rows] == [
            "ytopt (predefined space)",
            "AutoScheduler (auto space)",
        ]
        # Both priced by the same calibrated model: same order of magnitude.
        a, b = rows[0].best_runtime, rows[1].best_runtime
        assert 0.01 < a / b < 100

    def test_only_3mm_supported(self):
        with pytest.raises(ValueError):
            autoscheduler_comparison(kernel="lu")


class TestMeasureOptionAblation:
    def test_four_settings(self):
        rows = measure_option_ablation(max_evals=10, seed=0)
        assert len(rows) == 4

    def test_more_runs_cost_more_process_time(self):
        rows = {r.setting: r for r in measure_option_ablation(max_evals=10, seed=0)}
        assert (
            rows["number=3, n_parallel=1"].total_time
            > rows["number=1, n_parallel=1"].total_time
        )

    def test_parallel_builds_cost_less(self):
        rows = {r.setting: r for r in measure_option_ablation(max_evals=10, seed=0)}
        assert (
            rows["number=1, n_parallel=8"].total_time
            < rows["number=1, n_parallel=1"].total_time
        )
