"""CLI surface of the tuning service: serve / submit / status / watch / merge.

These run the real console entry points in subprocesses against a live
``repro serve`` — the full wire path a user exercises.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True, text=True, env=_env(), timeout=timeout,
    )


@pytest.fixture
def server(tmp_path):
    """A live ``repro serve`` subprocess rooted at tmp_path."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--root", str(tmp_path),
         "--workers", "2", "--max-evals", "50"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=_env(),
    )
    address_file = tmp_path / "server.json"
    deadline = time.time() + 30
    while not address_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(f"serve died: {proc.stderr.read()}")
        if time.time() > deadline:
            proc.kill()
            raise RuntimeError("serve never wrote server.json")
        time.sleep(0.05)
    yield proc
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=60)


class TestSubmitRoundTrip:
    def test_submit_wait_json_contract(self, tmp_path, server):
        res = _cli("submit", "--root", str(tmp_path), "--kernel", "lu",
                   "--size", "large", "--max-evals", "5", "--seed", "0",
                   "--wait")
        assert res.returncode == 0, res.stderr
        record = json.loads(res.stdout)
        assert record["state"] == "done"
        assert record["spec"]["kernel"] == "lu"
        assert record["spec"]["max_evals"] == 5
        assert record["attempts"] == 1
        assert record["job_id"].startswith("job-")
        result = record["result"]
        assert set(result) == {"tuner", "kernel", "size", "best_runtime",
                               "best_config", "n_evals", "total_time",
                               "trajectory"}
        assert result["n_evals"] == 5
        assert len(result["trajectory"]) == 5

    def test_submit_matches_local_tune_json(self, tmp_path, server, capsys):
        """The service's result payload is the same contract — and the same
        bytes — as ``repro tune --json`` for the same spec."""
        assert main(["tune", "--kernel", "lu", "--size", "large",
                     "--max-evals", "5", "--seed", "3", "--json"]) == 0
        local = json.loads(capsys.readouterr().out)
        res = _cli("submit", "--root", str(tmp_path), "--kernel", "lu",
                   "--size", "large", "--max-evals", "5", "--seed", "3",
                   "--wait")
        assert res.returncode == 0, res.stderr
        remote = json.loads(res.stdout)["result"]
        assert json.dumps(remote, sort_keys=True) == json.dumps(
            local, sort_keys=True
        )

    def test_over_quota_submission_exits_nonzero(self, tmp_path, server):
        res = _cli("submit", "--root", str(tmp_path), "--kernel", "lu",
                   "--size", "large", "--max-evals", "999")
        assert res.returncode == 2
        assert "rejected" in res.stderr
        assert "quota" in res.stderr

    def test_no_server_exits_nonzero(self, tmp_path):
        res = _cli("submit", "--root", str(tmp_path / "nowhere"),
                   "--kernel", "lu", "--size", "large")
        assert res.returncode == 1
        assert "no running server" in res.stderr


class TestStatusAndWatch:
    def test_status_whole_server_and_single_job(self, tmp_path, server):
        sub = _cli("submit", "--root", str(tmp_path), "--kernel", "lu",
                   "--size", "large", "--max-evals", "4", "--wait")
        job_id = json.loads(sub.stdout)["job_id"]
        whole = _cli("status", "--root", str(tmp_path))
        assert whole.returncode == 0
        payload = json.loads(whole.stdout)
        assert payload["states"] == {"done": 1}
        assert payload["workers"] == 2
        single = _cli("status", "--root", str(tmp_path), "--job-id", job_id)
        assert json.loads(single.stdout)["job"]["job_id"] == job_id

    def test_watch_stream_equals_trace_golden(self, tmp_path, server):
        """`repro watch` output is byte-identical to the session's JSONL
        trace file — the golden-file contract of the event stream."""
        sub = _cli("submit", "--root", str(tmp_path), "--kernel", "lu",
                   "--size", "large", "--max-evals", "5", "--seed", "0",
                   "--wait")
        record = json.loads(sub.stdout)
        watch = _cli("watch", "--root", str(tmp_path), record["job_id"])
        assert watch.returncode == 0, watch.stderr
        golden = Path(record["trace"]).read_text()
        assert watch.stdout == golden
        events = [json.loads(line)["event"]
                  for line in watch.stdout.splitlines()]
        assert events[0] == "run_started"
        assert events[-1] == "run_finished"

    def test_watch_unknown_job_exits_nonzero(self, tmp_path, server):
        res = _cli("watch", "--root", str(tmp_path), "job-0042-bogus")
        assert res.returncode == 1


class TestServeLifecycle:
    def test_sigterm_drains_and_merges(self, tmp_path, server):
        sub = _cli("submit", "--root", str(tmp_path), "--kernel", "lu",
                   "--size", "large", "--max-evals", "4", "--wait")
        assert sub.returncode == 0
        server.send_signal(signal.SIGTERM)
        server.wait(timeout=60)
        assert server.returncode == 0
        assert not (tmp_path / "server.json").exists()
        merged = tmp_path / "merged.sqlite"
        assert merged.exists()
        report = _cli("report", "--db", str(merged))
        assert report.returncode == 0
        assert "lu / large" in report.stdout

    def test_offline_merge_command(self, tmp_path, server):
        _cli("submit", "--root", str(tmp_path), "--kernel", "lu",
             "--size", "large", "--max-evals", "4", "--wait")
        res = _cli("merge", "--root", str(tmp_path))
        assert res.returncode == 0
        assert "1 run(s)" in res.stdout
