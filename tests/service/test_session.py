"""TuningSession: ownership, determinism, cancellation, fault injection."""

import json

import pytest

from repro.common.errors import ServiceError
from repro.experiments.runner import run_tuner
from repro.kernels import get_benchmark
from repro.service import (
    FaultInjector,
    InjectedFault,
    JobSpec,
    SessionCancelled,
    TuningSession,
)
from repro.telemetry import RunStore, event_line
from repro.telemetry.bus import Sink


def spec(**kw) -> JobSpec:
    base = dict(kernel="lu", size="large", tuner="ytopt", max_evals=6, seed=0)
    base.update(kw)
    return JobSpec(**base)


def payload_of(run) -> str:
    return json.dumps(run.to_payload(), sort_keys=True)


class _CollectingSink(Sink):
    """Accumulate the canonical serialized line of every event."""

    def __init__(self):
        self.lines = []

    def handle(self, event):
        self.lines.append(event_line(event))


class TestOwnership:
    def test_session_owns_its_stack(self):
        s = TuningSession(spec())
        assert s.evaluator is not None
        assert s.optimizer is not None  # ytopt exposes the BO optimizer
        assert s.autotuner is not None
        assert s.clock is not None

    def test_two_sessions_share_nothing(self):
        a = TuningSession(spec(seed=0))
        b = TuningSession(spec(seed=1))
        assert a.evaluator is not b.evaluator
        assert a.optimizer is not b.optimizer
        assert a.clock is not b.clock

    def test_autotvm_session_owns_tuner_and_measurer(self):
        s = TuningSession(spec(tuner="AutoTVM-GA"))
        assert s.optimizer is None
        assert s._autotvm_tuner is not None
        assert s._measurer is not None

    def test_single_use(self):
        s = TuningSession(spec(max_evals=3))
        s.run()
        with pytest.raises(ServiceError, match="single-use"):
            s.run()


class TestDeterminism:
    def test_session_matches_run_tuner(self):
        """The session refactor must not change run_tuner's trajectories."""
        run_a = TuningSession(spec()).run()
        run_b = run_tuner(get_benchmark("lu", "large"), "ytopt",
                          max_evals=6, seed=0)
        assert payload_of(run_a) == payload_of(run_b)

    def test_session_matches_run_tuner_autotvm(self):
        run_a = TuningSession(spec(tuner="AutoTVM-Random")).run()
        run_b = run_tuner(get_benchmark("lu", "large"), "AutoTVM-Random",
                          max_evals=6, seed=0)
        assert payload_of(run_a) == payload_of(run_b)

    def test_owned_telemetry_does_not_change_trajectory(self, tmp_path):
        bare = TuningSession(spec()).run()
        instrumented = TuningSession(
            spec(),
            store_path=str(tmp_path / "shard.sqlite"),
            trace_path=str(tmp_path / "trace.jsonl"),
        ).run()
        assert payload_of(bare) == payload_of(instrumented)

    def test_backend_pin_does_not_change_simulated_trajectory(self):
        """Swing never builds executable modules, so seed-0 runs are
        byte-identical under native vs tensor backend pins."""
        native = run_tuner(get_benchmark("lu", "large"), "ytopt",
                           max_evals=6, seed=0, backend="native")
        tensor = run_tuner(get_benchmark("lu", "large"), "ytopt",
                           max_evals=6, seed=0, backend="tensor")
        unpinned = run_tuner(get_benchmark("lu", "large"), "ytopt",
                             max_evals=6, seed=0)
        assert payload_of(native) == payload_of(tensor) == payload_of(unpinned)


class TestBackendAdmission:
    def test_unknown_backend_rejected(self):
        from repro.service import JobRejected

        with pytest.raises(JobRejected, match="unknown backend"):
            spec(backend="cuda").validate()

    def test_ladder_tiers_admitted(self):
        for tier in ("native", "tensor", "codegen", "interp"):
            spec(backend=tier).validate()

    def test_backend_round_trips_through_wire_json(self):
        s = spec(backend="native")
        assert JobSpec.from_dict(s.to_dict()).backend == "native"


class TestShard:
    def test_run_lands_in_shard(self, tmp_path):
        shard = tmp_path / "shard.sqlite"
        run = TuningSession(spec(), store_path=str(shard)).run()
        with RunStore(shard) as store:
            rows = store.runs()
        assert len(rows) == 1
        assert rows[0].best_runtime == pytest.approx(run.best_runtime)
        assert rows[0].n_evals == run.n_evals

    def test_extra_sink_stream_equals_trace(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        collector = _CollectingSink()
        TuningSession(
            spec(), trace_path=str(trace), extra_sinks=[collector]
        ).run()
        assert collector.lines == trace.read_text().splitlines()
        assert any('"event": "run_finished"' in line for line in collector.lines)


class TestCancellation:
    def test_precancelled_session_never_starts(self):
        s = TuningSession(spec())
        s.cancel("test")
        with pytest.raises(SessionCancelled):
            s.run()

    def test_midrun_cancel_leaves_no_partial_shard(self, tmp_path):
        shard = tmp_path / "shard.sqlite"
        s = TuningSession(
            spec(max_evals=20, fault={"mode": "cancel", "at_eval": 3}),
            store_path=str(shard),
        )
        with pytest.raises(SessionCancelled, match="injected self-cancel"):
            s.run()
        # the store sink only commits on RunFinished, never emitted here
        with RunStore(shard) as store:
            assert store.runs() == []


class TestFaultInjection:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ServiceError, match="unknown fault mode"):
            FaultInjector({"mode": "explode"})

    def test_crash_fires_at_eval(self):
        s = TuningSession(spec(fault={"mode": "crash", "at_eval": 2}))
        with pytest.raises(InjectedFault, match="evaluation 2"):
            s.run()

    def test_crash_spares_later_attempts(self):
        """attempt > attempts runs clean — the retry-determinism contract."""
        clean = TuningSession(spec()).run()
        retried = TuningSession(
            spec(fault={"mode": "crash", "at_eval": 2, "attempts": 1}),
            attempt=2,
        ).run()
        assert payload_of(retried) == payload_of(clean)

    def test_crashed_sink_does_not_break_the_run(self, tmp_path):
        """A crashing sink is quarantined by the bus; the store still commits."""
        shard = tmp_path / "shard.sqlite"
        clean = TuningSession(spec()).run()
        run = TuningSession(
            spec(fault={"mode": "sink"}), store_path=str(shard)
        ).run()
        assert payload_of(run) == payload_of(clean)
        with RunStore(shard) as store:
            assert len(store.runs()) == 1

    def test_slow_fault_stalls_but_completes(self):
        run = TuningSession(
            spec(max_evals=3, fault={"mode": "slow", "per_eval": 0.01})
        ).run()
        assert run.n_evals == 3
