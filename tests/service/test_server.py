"""TuningServer battery: concurrency determinism, fault containment, quotas.

Everything here drives the server in-process (no TCP) through its async API;
the wire protocol and CLI get their own tests in ``test_cli_service.py``.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

import pytest

from repro.common.errors import ServiceError
from repro.service import (
    JobRejected,
    JobSpec,
    ServerConfig,
    ServerQuotas,
    ServiceClient,
    TuningServer,
    TuningSession,
)
from repro.telemetry import RunStore
from repro.telemetry.report import report_text


def run_with_server(body, **config_kw):
    """Boot a server (no TCP unless asked), run ``body(server)``, stop it."""
    serve_tcp = config_kw.pop("serve_tcp", False)
    stop_kw = config_kw.pop("stop_kw", {})

    async def main():
        server = TuningServer(ServerConfig(**config_kw))
        await server.start(serve_tcp=serve_tcp)
        try:
            return await body(server)
        finally:
            await server.stop(**stop_kw)

    return asyncio.run(main())


def serial_payload(**spec_kw) -> dict:
    """What one serial (non-service) session produces for this spec."""
    return TuningSession(JobSpec(**spec_kw)).run().to_payload()


# The acceptance grid: 2 kernels x 2 sizes x 2 seeds, small budgets.
GRID = [
    dict(kernel=kernel, size=size, tuner="ytopt", max_evals=5, seed=seed)
    for kernel in ("lu", "3mm")
    for size in ("large", "extralarge")
    for seed in (0, 1)
]


class TestConcurrentDeterminism:
    def test_eight_concurrent_sessions_match_serial(self, tmp_path):
        """8 sessions racing on 4 workers produce byte-identical results to
        the same specs run serially — and the merged store's report matches
        the serial single-DB golden."""
        serial_db = tmp_path / "serial.sqlite"
        serial = [
            json.dumps(
                TuningSession(JobSpec(**spec), store_path=str(serial_db))
                .run()
                .to_payload(),
                sort_keys=True,
            )
            for spec in GRID
        ]
        with RunStore(serial_db) as store:
            golden_report = report_text(store)

        async def body(server):
            jobs = [server.submit(spec) for spec in GRID]
            finals = await asyncio.gather(
                *(server.wait_terminal(j.job_id) for j in jobs)
            )
            return finals

        root = tmp_path / "service"
        finals = run_with_server(body, root=root, workers=4)

        assert [j.state for j in finals] == ["done"] * 8
        concurrent = [json.dumps(j.result, sort_keys=True) for j in finals]
        assert concurrent == serial

        merged = root / "merged.sqlite"  # written by server.stop()
        with RunStore(merged) as store:
            assert len(store.runs()) == 8
            assert report_text(store) == golden_report

    def test_jobs_actually_overlap(self, tmp_path):
        """With 4 workers, at least two sessions must be in flight at once
        (slow-fault sessions so the overlap window is observable)."""

        async def body(server):
            jobs = [
                server.submit(dict(kernel="lu", size="large", max_evals=4,
                                   seed=seed,
                                   fault={"mode": "slow", "per_eval": 0.05}))
                for seed in range(4)
            ]
            peak = 0
            while not all(server.jobs[j.job_id].terminal for j in jobs):
                peak = max(peak, len(server._sessions))
                await asyncio.sleep(0.005)
            return peak

        peak = run_with_server(body, root=tmp_path, workers=4,
                               allow_fault_injection=True)
        assert peak >= 2


class TestFaultContainment:
    def test_crashed_worker_is_retried(self, tmp_path):
        clean = json.dumps(
            serial_payload(kernel="lu", size="large", max_evals=5, seed=0),
            sort_keys=True,
        )

        async def body(server):
            job = server.submit(
                dict(kernel="lu", size="large", max_evals=5, seed=0,
                     fault={"mode": "crash", "at_eval": 2, "attempts": 1})
            )
            return await server.wait_terminal(job.job_id)

        final = run_with_server(
            body, root=tmp_path, workers=2, retries=1,
            allow_fault_injection=True,
        )
        assert final.state == "done"
        assert final.attempts == 2  # crashed once, clean on retry
        assert json.dumps(final.result, sort_keys=True) == clean
        with RunStore(tmp_path / "merged.sqlite") as store:
            assert len(store.runs()) == 1

    def test_persistent_crash_fails_job_but_not_server(self, tmp_path):
        async def body(server):
            doomed = server.submit(
                dict(kernel="lu", size="large", max_evals=5, seed=0,
                     fault={"mode": "crash", "at_eval": 1, "attempts": 99})
            )
            healthy = server.submit(
                dict(kernel="3mm", size="large", max_evals=5, seed=0)
            )
            doomed_final = await server.wait_terminal(doomed.job_id)
            healthy_final = await server.wait_terminal(healthy.job_id)
            # the server keeps serving after the failure
            late = server.submit(
                dict(kernel="lu", size="large", max_evals=4, seed=7)
            )
            late_final = await server.wait_terminal(late.job_id)
            return doomed_final, healthy_final, late_final

        doomed, healthy, late = run_with_server(
            body, root=tmp_path, workers=2, retries=1,
            allow_fault_injection=True,
        )
        assert doomed.state == "failed"
        assert "all 2 attempt(s)" in doomed.error
        assert doomed.shard is None  # discarded, never merged
        assert healthy.state == "done"
        assert late.state == "done"
        with RunStore(tmp_path / "merged.sqlite") as store:
            ids = {r.run_id for r in store.runs()}
        assert ids == {"3mm:large:ytopt:seed0", "lu:large:ytopt:seed7"}

    def test_slow_session_hits_quota_others_survive(self, tmp_path):
        """A stalling session is cancelled by the wall-clock watchdog; the
        concurrent healthy session is untouched."""
        clean = json.dumps(
            serial_payload(kernel="3mm", size="large", max_evals=5, seed=0),
            sort_keys=True,
        )

        async def body(server):
            slow = server.submit(
                dict(kernel="lu", size="large", max_evals=200, seed=0,
                     fault={"mode": "slow", "per_eval": 0.2})
            )
            healthy = server.submit(
                dict(kernel="3mm", size="large", max_evals=5, seed=0)
            )
            return (
                await server.wait_terminal(slow.job_id),
                await server.wait_terminal(healthy.job_id),
            )

        slow, healthy = run_with_server(
            body, root=tmp_path, workers=2,
            quotas=ServerQuotas(max_evals=500, session_timeout=0.6),
            allow_fault_injection=True,
        )
        assert slow.state == "cancelled"
        assert "quota" in slow.error
        assert slow.shard is None
        assert healthy.state == "done"
        assert json.dumps(healthy.result, sort_keys=True) == clean
        with RunStore(tmp_path / "merged.sqlite") as store:
            assert {r.run_id for r in store.runs()} == {"3mm:large:ytopt:seed0"}

    def test_crashed_sink_is_quarantined(self, tmp_path):
        async def body(server):
            job = server.submit(
                dict(kernel="lu", size="large", max_evals=5, seed=0,
                     fault={"mode": "sink"})
            )
            return await server.wait_terminal(job.job_id)

        final = run_with_server(
            body, root=tmp_path, workers=1, allow_fault_injection=True
        )
        assert final.state == "done"
        with RunStore(tmp_path / "merged.sqlite") as store:
            assert len(store.runs()) == 1


class TestQuotasAndRejection:
    def test_over_budget_submission_rejected(self, tmp_path):
        async def body(server):
            with pytest.raises(JobRejected, match="quota"):
                server.submit(dict(kernel="lu", size="large", max_evals=999))
            return server.status()

        status = run_with_server(
            body, root=tmp_path, quotas=ServerQuotas(max_evals=50)
        )
        assert status["jobs"] == []  # never entered the queue

    def test_queue_depth_cap(self, tmp_path):
        async def body(server):
            # submit without yielding to the workers -> the queue fills up
            for seed in range(2):
                server.submit(
                    dict(kernel="lu", size="large", max_evals=50, seed=seed,
                         fault={"mode": "slow", "per_eval": 0.05})
                )
            with pytest.raises(JobRejected, match="queue"):
                server.submit(dict(kernel="lu", size="large", max_evals=5,
                                   seed=99))

        run_with_server(
            body, root=tmp_path, workers=1,
            quotas=ServerQuotas(max_queued=2), allow_fault_injection=True,
            stop_kw=dict(drain=False),
        )

    def test_malformed_spec_rejected(self, tmp_path):
        async def body(server):
            with pytest.raises(JobRejected):
                server.submit(dict(kernel="nope", size="large"))
            with pytest.raises(JobRejected):
                server.submit(dict(kernel="lu", size="large", bogus=1))

        run_with_server(body, root=tmp_path)

    def test_fault_injection_gated_by_default(self, tmp_path):
        async def body(server):
            with pytest.raises(JobRejected, match="fault injection"):
                server.submit(dict(kernel="lu", size="large", max_evals=5,
                                   fault={"mode": "crash"}))

        run_with_server(body, root=tmp_path)

    def test_unknown_job_id(self, tmp_path):
        async def body(server):
            with pytest.raises(ServiceError, match="unknown job"):
                server.status("job-9999-nope")

        run_with_server(body, root=tmp_path)


class TestWatchStreaming:
    def test_late_watcher_replays_full_stream(self, tmp_path):
        """A watcher attaching after completion still sees every event, and
        the stream is byte-identical to the session's JSONL trace."""

        async def body(server):
            job = server.submit(dict(kernel="lu", size="large", max_evals=5,
                                     seed=0))
            final = await server.wait_terminal(job.job_id)
            lines = [line async for line in server.watch(job.job_id)]
            return final, lines

        final, lines = run_with_server(body, root=tmp_path, workers=1)
        trace = Path(final.trace).read_text().splitlines()
        assert lines == trace
        assert json.loads(lines[0])["event"] == "run_started"
        assert json.loads(lines[-1])["event"] == "run_finished"

    def test_live_watcher_sees_same_stream_as_late_watcher(self, tmp_path):
        async def body(server):
            job = server.submit(dict(kernel="lu", size="large", max_evals=5,
                                     seed=0))
            live = [line async for line in server.watch(job.job_id)]
            replay = [line async for line in server.watch(job.job_id)]
            return live, replay

        live, replay = run_with_server(body, root=tmp_path, workers=1)
        assert live == replay


class TestShutdownAndTcp:
    def test_shutdown_merges_and_removes_address_file(self, tmp_path):
        async def body(server):
            host, port = server.address
            assert (Path(tmp_path) / "server.json").exists()
            job = server.submit(dict(kernel="lu", size="large", max_evals=4,
                                     seed=0))
            await server.wait_terminal(job.job_id)
            return host, port

        run_with_server(body, root=tmp_path, serve_tcp=True)
        assert not (Path(tmp_path) / "server.json").exists()
        assert (Path(tmp_path) / "merged.sqlite").exists()

    def test_tcp_round_trip(self, tmp_path):
        """ping / submit / status / watch / merge over the real socket."""

        async def body(server):
            host, port = server.address

            def client_side():
                client = ServiceClient(host, port)
                assert client.ping()
                record = client.submit(
                    dict(kernel="lu", size="large", max_evals=4, seed=0)
                )
                assert record["state"] == "queued"
                items = list(client.watch(record["job_id"]))
                final = items[-1]
                lines = items[:-1]
                assert final["state"] == "done"
                trace = Path(final["trace"]).read_text().splitlines()
                assert lines == trace
                status = client.status(record["job_id"])["job"]
                assert status["state"] == "done"
                merged = client.merge()
                assert merged["runs"] == 1
                with pytest.raises(JobRejected):
                    client.submit(dict(kernel="lu", size="large",
                                       max_evals=10_000))
                return final

            return await asyncio.to_thread(client_side)

        final = run_with_server(body, root=tmp_path, serve_tcp=True)
        assert final["result"]["n_evals"] == 4
