"""Sharded run store: the merge is order-independent, idempotent, and equal
to serial single-DB writes — proven property-based over random run batches."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.service import ShardedRunStore
from repro.telemetry import (
    RunFinished,
    RunStarted,
    RunStore,
    TrialMeasured,
    make_run_id,
)
from repro.telemetry.report import report_text


def make_run(kernel, size, tuner, seed, best, ts):
    """One synthetic (RunStarted, RunFinished, trials) triple at time ``ts``."""
    started = RunStarted(
        run_id=make_run_id(kernel, size, tuner, seed),
        kernel=kernel,
        size_name=size,
        tuner=tuner,
        seed=seed,
        max_evals=2,
        metadata={"seed": seed},
    )
    started.ts = float(ts)
    finished = RunFinished(
        run_id=started.run_id,
        best_runtime=best,
        # P0..P5 so report formatting works for every kernel in the grid
        best_config={f"P{i}": 8 for i in range(6)},
        n_evals=2,
        total_time=best * 4,
    )
    finished.ts = float(ts) + 0.5
    trials = [
        TrialMeasured(config={"P0": 4}, runtime=best * 2, compile_time=0.1,
                      elapsed=best * 2),
        TrialMeasured(config={"P0": 8}, runtime=best, compile_time=0.1,
                      elapsed=best * 4),
    ]
    return started, finished, trials


def store_dump(path):
    """Every row of a run store, in canonical comparable form."""
    with RunStore(path) as store:
        runs = sorted(
            (r for r in store.runs()), key=lambda r: (r.kernel, r.size_name,
                                                      r.tuner, r.seed or -1)
        )
        return [
            (
                r.run_id, r.kernel, r.size_name, r.tuner, r.seed, r.max_evals,
                r.best_runtime, r.best_config, r.n_evals, r.total_time,
                r.error, r.started_ts, r.finished_ts,
                [(e.index, e.config, e.runtime, e.elapsed, e.error)
                 for e in store.evaluations(r.run_id)],
            )
            for r in runs
        ]


# One synthetic run: identity drawn from a small grid (so identity collisions
# actually happen), plus a distinct best runtime per draw.
run_params = st.tuples(
    st.sampled_from(["lu", "3mm"]),
    st.sampled_from(["large", "extralarge"]),
    st.sampled_from(["ytopt", "AutoTVM-GA"]),
    st.integers(min_value=0, max_value=2),
    st.floats(min_value=0.5, max_value=9.5, allow_nan=False),
)


@settings(max_examples=40, deadline=None)
@given(
    batch=st.lists(run_params, min_size=1, max_size=8),
    shard_of=st.lists(st.integers(min_value=0, max_value=3), min_size=8,
                      max_size=8),
    order=st.permutations(list(range(4))),
)
def test_any_merge_order_equals_serial_writes(tmp_path_factory, batch,
                                              shard_of, order):
    """Partition random runs across shards arbitrarily; merging the shards in
    ANY order produces exactly the store serial save_run calls produce —
    same rows and same ``repro report`` bytes."""
    tmp = tmp_path_factory.mktemp("merge")
    runs = [
        make_run(k, s, t, seed, best, ts=i)  # increasing ts = serial order
        for i, (k, s, t, seed, best) in enumerate(batch)
    ]

    serial = tmp / "serial.sqlite"
    with RunStore(serial) as store:
        for started, finished, trials in runs:
            store.save_run(started, finished, trials)

    root = tmp / "service"
    sharded = ShardedRunStore(root)
    shards = [sharded.open_shard(f"shard-{i}") for i in range(4)]
    try:
        for (started, finished, trials), idx in zip(runs, shard_of):
            shards[idx].save_run(started, finished, trials)
    finally:
        for s in shards:
            s.close()

    merged = tmp / "merged.sqlite"
    with RunStore(merged) as dest:
        for idx in order:
            with sharded.open_shard(f"shard-{idx}") as shard:
                dest.merge_from(shard)

    assert store_dump(merged) == store_dump(serial)
    assert report_text_of(merged) == report_text_of(serial)


def report_text_of(path):
    with RunStore(path) as store:
        return report_text(store)


@settings(max_examples=25, deadline=None)
@given(batch=st.lists(run_params, min_size=1, max_size=6))
def test_remerge_is_idempotent(tmp_path_factory, batch):
    """Folding the same shard in twice adopts nothing and changes nothing."""
    tmp = tmp_path_factory.mktemp("idem")
    shard_path = tmp / "shard.sqlite"
    with RunStore(shard_path) as shard:
        for i, (k, s, t, seed, best) in enumerate(batch):
            shard.save_run(*make_run(k, s, t, seed, best, ts=i))

    merged = tmp / "merged.sqlite"
    with RunStore(merged) as dest, RunStore(shard_path) as shard:
        first = dest.merge_from(shard)
        assert first >= 1
        before = store_dump(merged)
        assert dest.merge_from(shard) == 0
    assert store_dump(merged) == before


def test_timestamp_tie_breaks_identically_both_ways(tmp_path):
    """Same identity, same timestamps, different content: both merge orders
    pick the same winner (the recency key is a total order)."""
    a = make_run("lu", "large", "ytopt", 0, best=1.0, ts=5)
    b = make_run("lu", "large", "ytopt", 0, best=2.0, ts=5)
    dumps = []
    for first, second in [(a, b), (b, a)]:
        root = tmp_path / f"case-{dumps and 'ba' or 'ab'}"
        root.mkdir()
        for name, run in [("one", first), ("two", second)]:
            with RunStore(root / f"{name}.sqlite") as s:
                s.save_run(*run)
        with RunStore(root / "merged.sqlite") as dest:
            for name in ["one", "two"]:
                with RunStore(root / f"{name}.sqlite") as s:
                    dest.merge_from(s)
        dump = store_dump(root / "merged.sqlite")
        assert len(dump) == 1
        dumps.append(dump)
    assert dumps[0] == dumps[1]


def test_newer_run_wins_regardless_of_merge_order(tmp_path):
    old = make_run("lu", "large", "ytopt", 0, best=3.0, ts=1)
    new = make_run("lu", "large", "ytopt", 0, best=1.0, ts=2)
    for order, names in [((old, new), "old-first"), ((new, old), "new-first")]:
        root = tmp_path / names
        root.mkdir()
        with RunStore(root / "merged.sqlite") as dest:
            for i, run in enumerate(order):
                with RunStore(root / f"s{i}.sqlite") as s:
                    s.save_run(*run)
                    dest.merge_from(s)
            (winner,) = dest.runs()
            assert winner.best_runtime == pytest.approx(1.0)


def test_sharded_merge_and_compact(tmp_path):
    sharded = ShardedRunStore(tmp_path)
    for i in range(3):
        with sharded.open_shard(f"job-{i}") as shard:
            shard.save_run(*make_run("lu", "large", "ytopt", i, best=float(i + 1),
                                     ts=i))
    merged = sharded.merge(compact=True)
    assert merged == tmp_path / "merged.sqlite"
    assert sharded.shards() == []  # compacted away
    with RunStore(merged) as store:
        assert len(store.runs()) == 3
    # incremental: merging again with no shards keeps the adopted runs
    sharded.merge()
    with RunStore(merged) as store:
        assert len(store.runs()) == 3


def test_shard_path_rejects_traversal(tmp_path):
    from repro.common.errors import ServiceError

    sharded = ShardedRunStore(tmp_path)
    with pytest.raises(ServiceError):
        sharded.shard_path("../escape")
    with pytest.raises(ServiceError):
        sharded.shard_path(".hidden")
