"""Run-store SQLite hygiene: WAL journal mode, busy timeout, and a
two-process write hammer that must never raise 'database is locked'."""

from __future__ import annotations

import multiprocessing
import sqlite3

import pytest

from repro.telemetry import (
    RunFinished,
    RunStarted,
    RunStore,
    TrialMeasured,
    make_run_id,
)


class TestConnectionPragmas:
    def test_wal_journal_mode(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        (mode,) = store._conn.execute("PRAGMA journal_mode").fetchone()
        store.close()
        assert mode.lower() == "wal"

    def test_busy_timeout_set(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite")
        (ms,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
        store.close()
        assert ms == 10_000

    def test_busy_timeout_override(self, tmp_path):
        store = RunStore(tmp_path / "runs.sqlite", busy_timeout=2.5)
        (ms,) = store._conn.execute("PRAGMA busy_timeout").fetchone()
        store.close()
        assert ms == 2_500

    def test_cross_thread_handoff_allowed(self, tmp_path):
        """A store built on one thread is usable from another (the service
        builds sessions on the event loop and runs them in workers)."""
        import threading

        store = RunStore(tmp_path / "runs.sqlite")
        errors = []

        def use():
            try:
                store.runs()
            except Exception as exc:  # pragma: no cover - the failure path
                errors.append(exc)

        t = threading.Thread(target=use)
        t.start()
        t.join()
        store.close()
        assert errors == []


def _hammer(path: str, tag: int, n_writes: int, out: multiprocessing.Queue):
    """Write ``n_writes`` runs into the shared store as fast as possible."""
    try:
        store = RunStore(path)
        for i in range(n_writes):
            seed = tag * 1000 + i
            started = RunStarted(
                run_id=make_run_id("lu", "large", "ytopt", seed),
                kernel="lu",
                size_name="large",
                tuner="ytopt",
                seed=seed,
                max_evals=1,
                metadata={"seed": seed},
            )
            finished = RunFinished(
                run_id=started.run_id,
                best_runtime=1.0 + i,
                best_config={"P0": 8, "P1": 8},
                n_evals=1,
                total_time=2.0,
            )
            trials = [TrialMeasured(config={"P0": 8}, runtime=1.0 + i,
                                    compile_time=0.1, elapsed=2.0)]
            store.save_run(started, finished, trials)
        store.close()
        out.put(("ok", tag))
    except sqlite3.OperationalError as exc:  # the flake WAL must prevent
        out.put(("locked", f"{tag}: {exc}"))
    except Exception as exc:  # pragma: no cover - unexpected failure detail
        out.put(("error", f"{tag}: {type(exc).__name__}: {exc}"))


@pytest.mark.slow
def test_two_process_hammer_never_locks(tmp_path):
    """Two processes writing the same store concurrently: every write lands,
    nobody sees 'database is locked' (WAL + busy_timeout regression test)."""
    path = str(tmp_path / "shared.sqlite")
    RunStore(path).close()  # create the schema before the race starts
    n_writes = 40
    ctx = multiprocessing.get_context("spawn")
    out: multiprocessing.Queue = ctx.Queue()
    procs = [ctx.Process(target=_hammer, args=(path, tag, n_writes, out))
             for tag in (1, 2)]
    for p in procs:
        p.start()
    results = [out.get(timeout=120) for _ in procs]
    for p in procs:
        p.join(timeout=120)
    assert all(status == "ok" for status, _ in results), results
    with RunStore(path) as store:
        assert len(store.runs()) == 2 * n_writes
