"""Tests for the four AutoTVM tuner strategies."""

import pytest

from repro.autotvm import (
    GATuner,
    GridSearchTuner,
    Measurer,
    RandomTuner,
    XGBTuner,
    measure_option,
    task_from_benchmark,
    PAPER_XGB_TRIAL_CAP,
)
from repro.common.errors import TuningError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator


def _setup(kernel="cholesky", size="large", seed=0):
    bench = get_benchmark(kernel, size)
    evaluator = SwingEvaluator(bench.profile, clock=VirtualClock())
    task = task_from_benchmark(bench, evaluator)
    measurer = Measurer(evaluator, measure_option(number=1, batch_overhead=0.0))
    return task, measurer


def _unique_configs(records):
    return {tuple(sorted(r.config.items())) for r in records}


class TestTuningLoop:
    def test_n_trial_respected(self):
        task, measurer = _setup()
        tuner = RandomTuner(task, seed=0)
        records = tuner.tune(n_trial=20, measurer=measurer)
        assert len(records) == 20

    def test_no_duplicate_configs(self):
        task, measurer = _setup()
        tuner = RandomTuner(task, seed=0)
        records = tuner.tune(n_trial=50, measurer=measurer)
        assert len(_unique_configs(records)) == 50

    def test_best_tracks_minimum(self):
        task, measurer = _setup()
        tuner = RandomTuner(task, seed=1)
        records = tuner.tune(n_trial=30, measurer=measurer)
        _, best = tuner.best()
        assert best == min(r.mean_cost for r in records)

    def test_best_before_tune_rejected(self):
        task, _ = _setup()
        with pytest.raises(TuningError):
            RandomTuner(task).best()

    def test_early_stopping(self):
        task, measurer = _setup()
        tuner = GridSearchTuner(task, seed=0)
        # Grid order explores a monotone-ish corner; with a tiny patience the
        # loop must stop long before n_trial.
        records = tuner.tune(n_trial=200, measurer=measurer, early_stopping=8)
        assert len(records) < 200

    def test_invalid_args_rejected(self):
        task, measurer = _setup()
        with pytest.raises(TuningError):
            RandomTuner(task).tune(n_trial=0, measurer=measurer)
        with pytest.raises(TuningError):
            RandomTuner(task).tune(n_trial=5, measurer=measurer, early_stopping=0)

    def test_exhausts_small_space(self):
        # cholesky-large space has 400 points; ask for more.
        task, measurer = _setup()
        tuner = RandomTuner(task, seed=0)
        records = tuner.tune(n_trial=500, measurer=measurer)
        assert len(records) == 400
        assert not tuner.has_next()

    def test_trajectory_timestamps_monotone(self):
        task, measurer = _setup()
        tuner = RandomTuner(task, seed=2)
        tuner.tune(n_trial=15, measurer=measurer)
        times = [t for t, _ in tuner.trajectory()]
        assert times == sorted(times)


class TestGridSearch:
    def test_enumerates_from_smallest_corner(self):
        task, measurer = _setup()
        tuner = GridSearchTuner(task, seed=0)
        records = tuner.tune(n_trial=3, measurer=measurer)
        # Index 0 = both knobs at their first (smallest) candidate.
        assert records[0].config == {"P0": 1, "P1": 1}
        assert records[1].config["P0"] == 2  # first knob varies fastest

    def test_deterministic(self):
        r1 = GridSearchTuner(_setup()[0], seed=0).tune(10, _setup()[1])
        t2, m2 = _setup()
        r2 = GridSearchTuner(t2, seed=99).tune(10, m2)
        assert [r.config for r in r1] == [r.config for r in r2]


class TestGATuner:
    def test_improves_over_generations(self):
        task, measurer = _setup(seed=0)
        tuner = GATuner(task, pop_size=8, seed=0)
        records = tuner.tune(n_trial=80, measurer=measurer)
        first_gen = min(r.mean_cost for r in records[:8])
        _, best = tuner.best()
        assert best <= first_gen

    def test_unique_visits(self):
        task, measurer = _setup()
        tuner = GATuner(task, seed=3)
        records = tuner.tune(n_trial=40, measurer=measurer)
        assert len(_unique_configs(records)) == len(records)


class TestXGBTuner:
    def test_paper_cap_reproduced(self):
        task, measurer = _setup()
        tuner = XGBTuner(task, trial_cap=PAPER_XGB_TRIAL_CAP, seed=0)
        records = tuner.tune(n_trial=100, measurer=measurer)
        assert len(records) == PAPER_XGB_TRIAL_CAP == 56
        assert not tuner.has_next()

    def test_uncapped_reaches_budget(self):
        task, measurer = _setup()
        tuner = XGBTuner(task, trial_cap=None, seed=0)
        records = tuner.tune(n_trial=80, measurer=measurer)
        assert len(records) == 80

    def test_model_trained_after_min_train(self):
        task, measurer = _setup()
        tuner = XGBTuner(task, min_train=8, seed=0)
        tuner.tune(n_trial=24, measurer=measurer)
        assert tuner.model is not None

    def test_model_guides_search_better_than_grid(self):
        task_x, measurer_x = _setup(seed=0)
        xgb = XGBTuner(task_x, trial_cap=None, seed=0)
        xgb.tune(n_trial=56, measurer=measurer_x)
        _, best_xgb = xgb.best()

        task_g, measurer_g = _setup(seed=0)
        grid = GridSearchTuner(task_g, seed=0)
        grid.tune(n_trial=56, measurer=measurer_g)
        _, best_grid = grid.best()
        assert best_xgb < best_grid

    def test_validation(self):
        task, _ = _setup()
        with pytest.raises(TuningError):
            XGBTuner(task, plan_size=0)
        with pytest.raises(TuningError):
            XGBTuner(task, plan_size=10, candidate_num=5)
        with pytest.raises(TuningError):
            XGBTuner(task, trial_cap=0)
