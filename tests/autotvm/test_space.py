"""Tests for AutoTVM knob config spaces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.autotvm import ConfigSpace
from repro.common.errors import SpaceError


def _space():
    cs = ConfigSpace()
    cs.define_knob("tile_y", [1, 2, 4, 8])
    cs.define_knob("tile_x", [1, 3, 9])
    cs.define_knob("unroll", [0, 1])
    return cs


class TestDefineKnob:
    def test_len_is_product(self):
        assert len(_space()) == 24

    def test_duplicate_knob_rejected(self):
        cs = _space()
        with pytest.raises(SpaceError):
            cs.define_knob("tile_y", [1])

    def test_empty_candidates_rejected(self):
        with pytest.raises(SpaceError):
            ConfigSpace().define_knob("k", [])

    def test_gene_sizes(self):
        assert _space().gene_sizes() == [4, 3, 2]

    def test_knob_candidates_lookup(self):
        assert _space().knob_candidates("tile_x") == [1, 3, 9]
        with pytest.raises(SpaceError):
            _space().knob_candidates("nope")


class TestIndexing:
    def test_index_zero_is_all_first(self):
        cfg = _space().get(0)
        assert cfg.to_dict() == {"tile_y": 1, "tile_x": 1, "unroll": 0}

    def test_first_knob_varies_fastest(self):
        cs = _space()
        assert cs.get(1)["tile_y"] == 2
        assert cs.get(1)["tile_x"] == 1

    def test_last_index(self):
        cfg = _space().get(23)
        assert cfg.to_dict() == {"tile_y": 8, "tile_x": 9, "unroll": 1}

    def test_out_of_range_rejected(self):
        with pytest.raises(SpaceError):
            _space().get(24)
        with pytest.raises(SpaceError):
            _space().get(-1)

    def test_knob_indices_roundtrip(self):
        cs = _space()
        for i in range(len(cs)):
            cfg = cs.get(i)
            assert cs.indices_to_index(cfg.knob_indices()) == i

    def test_from_knob_indices(self):
        cs = _space()
        cfg = cs.from_knob_indices((2, 1, 1))
        assert cfg.to_dict() == {"tile_y": 4, "tile_x": 3, "unroll": 1}

    def test_bad_indices_rejected(self):
        cs = _space()
        with pytest.raises(SpaceError):
            cs.indices_to_index((0, 0))  # wrong arity
        with pytest.raises(SpaceError):
            cs.indices_to_index((4, 0, 0))  # out of range

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 23))
    def test_property_roundtrip(self, i):
        cs = _space()
        assert cs.indices_to_index(cs.index_to_indices(i)) == i


class TestConfigEntity:
    def test_mapping_interface(self):
        cfg = _space().get(5)
        assert set(cfg) == {"tile_y", "tile_x", "unroll"}
        assert len(cfg) == 3

    def test_equality_hash(self):
        cs = _space()
        assert cs.get(3) == cs.get(3)
        assert cs.get(3) != cs.get(4)
        assert len({cs.get(3), cs.get(3)}) == 1
