"""Tests for transfer learning from tuning records."""

import pytest

from repro.autotvm import (
    Measurer,
    RandomTuner,
    XGBTuner,
    measure_option,
    task_from_benchmark,
)
from repro.autotvm.record import TuningRecord
from repro.autotvm.transfer import apply_history_best, warm_start
from repro.common.errors import TuningError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator


def _task(kernel="cholesky", size="large"):
    bench = get_benchmark(kernel, size)
    evaluator = SwingEvaluator(bench.profile, clock=VirtualClock())
    return task_from_benchmark(bench, evaluator), evaluator


def _records_from_run(n=30, seed=0):
    task, evaluator = _task()
    tuner = RandomTuner(task, seed=seed)
    measurer = Measurer(evaluator, measure_option(number=1, batch_overhead=0.0))
    return tuner.tune(n_trial=n, measurer=measurer), tuner


class TestApplyHistoryBest:
    def test_picks_recorded_minimum(self):
        records, tuner = _records_from_run()
        task, _ = _task()
        entity, cost = apply_history_best(task, records)
        assert cost == tuner.best()[1]
        assert entity.to_dict() == tuner.best()[0]

    def test_skips_other_tasks(self):
        records, _ = _records_from_run()
        other_task, _ = _task("lu", "extralarge")
        with pytest.raises(TuningError):
            apply_history_best(other_task, records)

    def test_skips_failed_records(self):
        task, _ = _task()
        records = [
            TuningRecord(task.name, "x", {"P0": 1, "P1": 1}, (), 0.1, 1.0, error="boom")
        ]
        with pytest.raises(TuningError):
            apply_history_best(task, records)

    def test_skips_foreign_configs(self):
        task, _ = _task()
        # P0=7 is not a divisor of 2000 — from an incompatible space.
        records = [
            TuningRecord(task.name, "x", {"P0": 7, "P1": 1}, (1.0,), 0.1, 1.0),
            TuningRecord(task.name, "x", {"P0": 50, "P1": 50}, (2.5,), 0.1, 1.0),
        ]
        entity, cost = apply_history_best(task, records)
        assert entity.to_dict() == {"P0": 50, "P1": 50} and cost == 2.5


class TestWarmStart:
    def test_absorbs_records_and_trains_model(self):
        records, _ = _records_from_run(n=30)
        task, _ = _task()
        tuner = XGBTuner(task, seed=1)
        absorbed = warm_start(tuner, records)
        assert absorbed == 30
        assert tuner.model is not None
        assert len(tuner.visited) == 30
        assert tuner.best_config is not None

    def test_no_remeasure_of_transferred_configs(self):
        records, _ = _records_from_run(n=25)
        task, evaluator = _task()
        tuner = XGBTuner(task, seed=2)
        warm_start(tuner, records)
        transferred = set(tuner.visited)
        measurer = Measurer(evaluator, measure_option(number=1, batch_overhead=0.0))
        tuner.tune(n_trial=20, measurer=measurer)
        new_visits = tuner.visited - transferred
        assert len(new_visits) == 20

    def test_warm_started_run_no_worse_than_cold(self):
        records, prior = _records_from_run(n=40, seed=3)
        task_w, ev_w = _task()
        warm = XGBTuner(task_w, seed=4)
        warm_start(warm, records)
        Measurer(ev_w, measure_option(number=1, batch_overhead=0.0))
        warm.tune(n_trial=16, measurer=Measurer(ev_w, measure_option(number=1, batch_overhead=0.0)))

        # The warm-started tuner's best includes transferred knowledge, so it
        # can never be worse than the prior run's best.
        assert warm.best()[1] <= prior.best()[1]

    def test_foreign_records_ignored(self):
        task, _ = _task()
        tuner = XGBTuner(task, seed=0)
        foreign = [
            TuningRecord("other-task", "x", {"P0": 1, "P1": 1}, (1.0,), 0.1, 1.0)
        ]
        assert warm_start(tuner, foreign) == 0
