"""Tests for tuning records (JSON log round-trip)."""

import pytest

from repro.autotvm import (
    TuningRecord,
    decode_record,
    encode_record,
    load_records,
    save_records,
)
from repro.autotvm.record import best_record
from repro.common.errors import TuningError
from repro.runtime.measure import MeasureResult


def _rec(cost=1.0, error=None, cfg=None):
    return TuningRecord(
        task="lu-large",
        tuner="RandomTuner",
        config=cfg or {"P0": 4, "P1": 8},
        costs=(cost,) if error is None else (),
        compile_time=1.2,
        timestamp=10.0,
        error=error,
    )


class TestRecord:
    def test_mean_cost(self):
        r = TuningRecord("t", "x", {}, (1.0, 3.0), 0.1, 1.0)
        assert r.mean_cost == 2.0

    def test_failed_mean_is_inf(self):
        assert _rec(error="boom").mean_cost == float("inf")

    def test_from_result(self):
        res = MeasureResult({"P0": 2}, (0.5,), 1.0, 3.0)
        r = TuningRecord.from_result("task", "tuner", res)
        assert r.config == {"P0": 2} and r.costs == (0.5,)

    def test_encode_decode_roundtrip(self):
        r = _rec()
        assert decode_record(encode_record(r)) == r

    def test_roundtrip_with_error(self):
        r = _rec(error="timeout")
        assert decode_record(encode_record(r)) == r

    def test_malformed_rejected(self):
        with pytest.raises(TuningError):
            decode_record("not json")
        with pytest.raises(TuningError):
            decode_record('{"task": "x"}')

    def test_save_load(self, tmp_path):
        records = [_rec(1.0), _rec(2.0, cfg={"P0": 1, "P1": 1})]
        path = tmp_path / "log.json"
        save_records(records, path)
        assert load_records(path) == records

    def test_best_record(self):
        records = [_rec(3.0), _rec(1.0, cfg={"P0": 9, "P1": 9}), _rec(0.0, error="x")]
        assert best_record(records).config == {"P0": 9, "P1": 9}

    def test_best_record_all_failed(self):
        with pytest.raises(TuningError):
            best_record([_rec(error="x")])
