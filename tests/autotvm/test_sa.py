"""Tests for the simulated-annealing model optimizer."""

import numpy as np
import pytest

from repro.autotvm import Measurer, XGBTuner, measure_option, task_from_benchmark
from repro.autotvm.tuner.sa import SimulatedAnnealingOptimizer
from repro.common.errors import TuningError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator


def _bowl_score(target):
    def score(states):
        return np.array(
            [sum((a - b) ** 2 for a, b in zip(s, target)) for s in states],
            dtype=float,
        )

    return score


class TestSAOptimizer:
    def test_finds_known_minimum(self):
        sa = SimulatedAnnealingOptimizer([20, 20], n_chains=32, n_steps=120, seed=0)
        best = sa.find_maximums(_bowl_score((7, 13)), num=3)
        assert best[0] == (7, 13)

    def test_results_sorted_by_score(self):
        sa = SimulatedAnnealingOptimizer([15, 15], seed=1)
        score = _bowl_score((5, 5))
        out = sa.find_maximums(score, num=5)
        vals = score(out)
        assert list(vals) == sorted(vals)

    def test_exclude_respected(self):
        sa = SimulatedAnnealingOptimizer([10, 10], n_chains=32, n_steps=100, seed=2)
        target = (4, 4)
        out = sa.find_maximums(_bowl_score(target), num=4, exclude={target})
        assert target not in out

    def test_seeds_accepted(self):
        sa = SimulatedAnnealingOptimizer([30, 30], n_chains=8, n_steps=30, seed=3)
        out = sa.find_maximums(
            _bowl_score((20, 20)), num=2, seeds=[(20, 20), (19, 20)]
        )
        assert (20, 20) in out

    def test_states_within_gene_sizes(self):
        sa = SimulatedAnnealingOptimizer([3, 7, 2], n_chains=16, n_steps=40, seed=4)
        out = sa.find_maximums(_bowl_score((1, 3, 1)), num=8)
        for s in out:
            assert all(0 <= x < g for x, g in zip(s, (3, 7, 2)))

    def test_deterministic_with_seed(self):
        a = SimulatedAnnealingOptimizer([12, 12], seed=5).find_maximums(
            _bowl_score((3, 9)), num=4
        )
        b = SimulatedAnnealingOptimizer([12, 12], seed=5).find_maximums(
            _bowl_score((3, 9)), num=4
        )
        assert a == b

    def test_validation(self):
        with pytest.raises(TuningError):
            SimulatedAnnealingOptimizer([])
        with pytest.raises(TuningError):
            SimulatedAnnealingOptimizer([5], n_chains=0)
        with pytest.raises(TuningError):
            SimulatedAnnealingOptimizer([5], temp_start=0.1, temp_end=0.5)


class TestXGBTunerWithSA:
    def _setup(self):
        bench = get_benchmark("cholesky", "large")
        evaluator = SwingEvaluator(bench.profile, clock=VirtualClock())
        task = task_from_benchmark(bench, evaluator)
        measurer = Measurer(evaluator, measure_option(number=1, batch_overhead=0.0))
        return task, measurer

    def test_sa_plan_runs(self):
        task, measurer = self._setup()
        tuner = XGBTuner(task, plan_optimizer="sa", trial_cap=None, seed=0)
        records = tuner.tune(n_trial=40, measurer=measurer)
        assert len(records) == 40
        _, best = tuner.best()
        assert best < 10.0  # close to the ~1.65s optimum, far from the corner

    def test_sa_never_revisits(self):
        task, measurer = self._setup()
        tuner = XGBTuner(task, plan_optimizer="sa", trial_cap=None, seed=1)
        records = tuner.tune(n_trial=48, measurer=measurer)
        configs = {tuple(sorted(r.config.items())) for r in records}
        assert len(configs) == 48

    def test_invalid_optimizer_rejected(self):
        task, _ = self._setup()
        with pytest.raises(TuningError):
            XGBTuner(task, plan_optimizer="gradient")
