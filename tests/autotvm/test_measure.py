"""Tests for the AutoTVM measurement pipeline."""

import pytest

from repro.autotvm import Measurer, measure_option, task_from_benchmark
from repro.common.errors import TuningError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator


def _task(seed=0):
    bench = get_benchmark("cholesky", "large")
    evaluator = SwingEvaluator(bench.profile, clock=VirtualClock())
    return task_from_benchmark(bench, evaluator), evaluator


class TestMeasureOption:
    def test_defaults(self):
        opt = measure_option()
        assert opt.number == 3 and opt.n_parallel == 8

    def test_validation(self):
        with pytest.raises(TuningError):
            measure_option(number=0)
        with pytest.raises(TuningError):
            measure_option(n_parallel=0)
        with pytest.raises(TuningError):
            measure_option(batch_overhead=-1.0)


class TestMeasurer:
    def test_evaluator_configured(self):
        task, evaluator = _task()
        Measurer(evaluator, measure_option(number=5, repeat=2, n_parallel=4))
        assert evaluator.number == 5
        assert evaluator.repeat == 2
        assert evaluator.compile_parallelism == 4

    def test_batch_measures_all(self):
        task, evaluator = _task()
        measurer = Measurer(evaluator, measure_option())
        batch = [task.space.get(i) for i in (0, 5, 10)]
        results = measurer.measure_batch(batch)
        assert len(results) == 3
        assert all(r.ok for r in results)

    def test_batch_overhead_charged(self):
        task, evaluator = _task()
        measurer = Measurer(evaluator, measure_option(number=1, batch_overhead=100.0))
        before = evaluator.clock.now
        measurer.measure_batch([task.space.get(0)])
        assert evaluator.clock.now >= before + 100.0

    def test_empty_batch_free(self):
        task, evaluator = _task()
        measurer = Measurer(evaluator, measure_option(batch_overhead=50.0))
        before = evaluator.clock.now
        assert measurer.measure_batch([]) == []
        assert evaluator.clock.now == before

    def test_repeated_runs_cost_more_time(self):
        task1, ev1 = _task()
        Measurer(ev1, measure_option(number=1, n_parallel=1, batch_overhead=0)).measure_batch(
            [task1.space.get(7)]
        )
        task2, ev2 = _task()
        Measurer(ev2, measure_option(number=4, n_parallel=1, batch_overhead=0)).measure_batch(
            [task2.space.get(7)]
        )
        assert ev2.clock.now > ev1.clock.now
