"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_lists_benchmarks_and_tuners(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "228,614,400" in out
        assert "ytopt" in out and "AutoTVM-GridSearch" in out


class TestList:
    def test_shows_full_registry(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kernel in ("3mm", "lu", "cholesky", "gemm", "syrk", "trmm", "jacobi2d"):
            assert kernel in out
        for tuner in ("ytopt", "AutoTVM-XGB", "ytopt-gp", "ytopt-tpe"):
            assert tuner in out
        assert "Registered benchmarks (7" in out
        assert "Registered tuners (7" in out

    def test_json_dump(self, capsys):
        import json

        assert main(["list", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["benchmarks"]) >= 7
        assert len(payload["tuners"]) >= 7
        kernels = {b["kernel"] for b in payload["benchmarks"]}
        assert {"gemm", "syrk", "trmm", "jacobi2d"} <= kernels


class TestTable1:
    def test_all_match(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("match") == 6
        assert "MISMATCH" not in out


class TestTune:
    def test_basic_run(self, capsys):
        rc = main(
            ["tune", "--kernel", "lu", "--size", "large", "--tuner", "ytopt",
             "--max-evals", "8", "--seed", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best" in out and "lu-large" in out

    def test_csv_output(self, tmp_path, capsys):
        csv = tmp_path / "traj.csv"
        rc = main(
            ["tune", "--kernel", "cholesky", "--size", "large",
             "--max-evals", "5", "--csv", str(csv)]
        )
        assert rc == 0
        lines = csv.read_text().strip().splitlines()
        assert lines[0] == "eval,elapsed_s,runtime_s"
        assert len(lines) == 6

    def test_xgb_cap_flag(self, capsys):
        rc = main(
            ["tune", "--kernel", "cholesky", "--size", "large",
             "--tuner", "AutoTVM-XGB", "--max-evals", "60", "--no-xgb-cap"]
        )
        assert rc == 0
        assert "60 evals" in capsys.readouterr().out

    def test_bad_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "--kernel", "fft", "--size", "large"])


class TestExperiment:
    def test_runs_named_experiment(self, capsys, tmp_path):
        csv = tmp_path / "exp.csv"
        rc = main(["experiment", "lu-large", "--evals", "6", "--csv", str(csv)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figures 4-5" in out
        assert "Minimum runtimes" in out
        assert csv.read_text().startswith("tuner,eval,elapsed_s,runtime_s")

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_custom_registered_pair_with_tuner_subset(self, capsys):
        rc = main(["experiment", "gemm-mini", "--evals", "12",
                   "--tuners", "ytopt-gp,ytopt-tpe,AutoTVM-Random"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "custom pair gemm/mini" in out
        assert "ytopt-gp" in out and "ytopt-tpe" in out
        assert "AutoTVM-GridSearch" not in out  # subset respected

    def test_unknown_tuner_in_subset(self, capsys):
        assert main(["experiment", "gemm-mini", "--tuners", "nosuch"]) == 2
        assert "unknown tuner" in capsys.readouterr().err

    def test_plugin_kernel_via_tune(self, capsys):
        rc = main(["tune", "--kernel", "jacobi2d", "--size", "mini",
                   "--tuner", "ytopt-tpe", "--max-evals", "12"])
        assert rc == 0
        assert "jacobi2d-mini" in capsys.readouterr().out


class TestAblation:
    def test_kappa(self, capsys):
        assert main(["ablation", "kappa", "--evals", "8"]) == 0
        assert "kappa=" in capsys.readouterr().out

    def test_measure(self, capsys):
        assert main(["ablation", "measure", "--evals", "8"]) == 0
        assert "n_parallel" in capsys.readouterr().out


class TestAutoschedule:
    def test_runs_on_3mm(self, capsys):
        rc = main(["autoschedule", "--kernel", "3mm", "--size", "large",
                   "--trials", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sketch parameters" in out
        assert "E.y" in out and "G.x" in out


class TestTelemetryFlags:
    TUNE = ["tune", "--kernel", "lu", "--size", "large", "--tuner", "ytopt",
            "--max-evals", "5", "--seed", "0"]

    def test_db_and_trace_written(self, tmp_path, capsys):
        db, trace = tmp_path / "runs.sqlite", tmp_path / "trace.jsonl"
        rc = main(self.TUNE + ["--db", str(db), "--trace", str(trace)])
        assert rc == 0
        assert db.exists() and trace.exists()
        err = capsys.readouterr().err
        assert "telemetry:" in err  # metrics summary goes to stderr

    def test_json_mode_emits_single_document(self, tmp_path, capsys):
        import json

        rc = main(self.TUNE + ["--json", "--db", str(tmp_path / "r.sqlite")])
        assert rc == 0
        captured = capsys.readouterr()
        doc = json.loads(captured.out)  # stdout is exactly one JSON document
        assert doc["tuner"] == "ytopt" and doc["n_evals"] == 5
        assert len(doc["trajectory"]) == 5
        assert captured.err == ""  # json mode silences progress too

    def test_quiet_suppresses_progress(self, capsys):
        rc = main(self.TUNE + ["--quiet"])
        assert rc == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "best" in captured.out  # the result line itself still prints

    def test_no_telemetry_still_works(self, capsys):
        rc = main(self.TUNE + ["--no-telemetry"])
        assert rc == 0
        assert "best" in capsys.readouterr().out


class TestFidelityFlags:
    def test_prune_and_probe_counts_reach_the_report(self, tmp_path, capsys):
        """Acceptance: `repro report` shows per-run pruned/promoted counts."""
        db = tmp_path / "runs.sqlite"
        rc = main(
            ["tune", "--kernel", "lu", "--size", "large", "--tuner", "ytopt",
             "--max-evals", "20", "--seed", "0", "--repeats", "3",
             "--probe-repeats", "2", "--prune", "--quiet", "--db", str(db)]
        )
        assert rc == 0
        capsys.readouterr()
        assert main(["report", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        table = out[out.index("Evaluations — lu / large"):]
        ytopt_row = next(l for l in table.splitlines() if l.startswith("ytopt"))
        fields = ytopt_row.split()
        # Columns: ... pruned, promoted, backend, seed
        pruned, promoted = int(fields[-4]), int(fields[-3])
        assert pruned > 0 and promoted > 0
        assert fields[-2] == "swing"  # backend tier recorded per trial

    def test_warm_start_flag_round_trips(self, tmp_path, capsys):
        db = tmp_path / "runs.sqlite"
        base = ["tune", "--kernel", "lu", "--size", "large", "--tuner", "ytopt",
                "--max-evals", "6", "--seed", "0", "--quiet"]
        assert main(base + ["--db", str(db)]) == 0
        first = capsys.readouterr().out
        assert main(base + ["--warm-start-db", str(db)]) == 0
        second = capsys.readouterr().out
        # matching budget: the warm-started run replays the stored best
        assert first.split("best")[1] == second.split("best")[1]


class TestReportCompare:
    def _make_store(self, path):
        rc = main(["tune", "--kernel", "lu", "--size", "large", "--tuner",
                   "ytopt", "--max-evals", "5", "--quiet", "--db", str(path)])
        assert rc == 0

    def test_report_regenerates_tables(self, tmp_path, capsys):
        db = tmp_path / "runs.sqlite"
        self._make_store(db)
        capsys.readouterr()
        assert main(["report", "--db", str(db)]) == 0
        out = capsys.readouterr().out
        assert "Minimum runtimes — lu / large" in out
        assert "Autotuning process — lu / large" in out
        assert "Evaluations — lu / large" in out

    def test_report_missing_store_errors(self, tmp_path, capsys):
        rc = main(["report", "--db", str(tmp_path / "empty.sqlite")])
        assert rc == 1
        assert "error:" in capsys.readouterr().err

    def test_compare_flags_regression_and_exits_1(self, tmp_path, capsys):
        import shutil
        import sqlite3

        base = tmp_path / "base.sqlite"
        self._make_store(base)
        cand = tmp_path / "cand.sqlite"
        shutil.copy(base, cand)
        conn = sqlite3.connect(cand)
        conn.execute("UPDATE runs SET best_runtime = best_runtime * 1.2")
        conn.commit()
        conn.close()
        capsys.readouterr()

        rc = main(["compare", str(base), str(cand), "--threshold", "0.10"])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.out
        assert "regression(s) at the 10% threshold" in captured.err

    def test_compare_identical_stores_passes(self, tmp_path, capsys):
        import shutil

        base = tmp_path / "base.sqlite"
        self._make_store(base)
        cand = tmp_path / "cand.sqlite"
        shutil.copy(base, cand)
        capsys.readouterr()

        rc = main(["compare", str(base), str(cand)])
        assert rc == 0
        assert "0 regressed" in capsys.readouterr().out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestTransfer:
    def _corpus(self, db, capsys):
        for kernel in ("lu", "cholesky"):
            assert main(["tune", "--kernel", kernel, "--size", "large",
                         "--tuner", "ytopt", "--max-evals", "6", "--seed", "1",
                         "--quiet", "--db", str(db)]) == 0
        capsys.readouterr()

    def test_inspect_then_fit_then_seeded_tune(self, tmp_path, capsys):
        import json

        db = tmp_path / "runs.sqlite"
        self._corpus(db, capsys)

        assert main(["transfer", "inspect", "--db", str(db)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_tasks"] == 2 and summary["n_records"] == 12

        assert main(["transfer", "fit", "--db", str(db),
                     "--exclude", "3mm/large"]) == 0
        fitted = json.loads(capsys.readouterr().out)
        assert fitted["meta"]["excluded"] == "3mm/large"
        from pathlib import Path

        assert Path(fitted["model"]).exists()

        # Transfer-seeded tune of a task the corpus never saw.
        assert main(["tune", "--kernel", "3mm", "--size", "large",
                     "--tuner", "ytopt", "--max-evals", "4", "--seed", "0",
                     "--quiet", "--transfer-db", str(db),
                     "--label", "ytopt-transfer"]) == 0
        assert "best" in capsys.readouterr().out

    def test_bad_exclude_format_rejected(self, tmp_path, capsys):
        db = tmp_path / "runs.sqlite"
        self._corpus(db, capsys)
        assert main(["transfer", "fit", "--db", str(db),
                     "--exclude", "nonsense"]) == 2

    def test_transfer_db_requires_ytopt_tuner(self, tmp_path, capsys):
        db = tmp_path / "runs.sqlite"
        self._corpus(db, capsys)
        rc = main(["tune", "--kernel", "lu", "--size", "large",
                   "--tuner", "AutoTVM-GA", "--max-evals", "4", "--quiet",
                   "--transfer-db", str(db)])
        assert rc != 0
