"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestInfo:
    def test_lists_benchmarks_and_tuners(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "228,614,400" in out
        assert "ytopt" in out and "AutoTVM-GridSearch" in out


class TestTable1:
    def test_all_match(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert out.count("match") == 6
        assert "MISMATCH" not in out


class TestTune:
    def test_basic_run(self, capsys):
        rc = main(
            ["tune", "--kernel", "lu", "--size", "large", "--tuner", "ytopt",
             "--max-evals", "8", "--seed", "0"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "best" in out and "lu-large" in out

    def test_csv_output(self, tmp_path, capsys):
        csv = tmp_path / "traj.csv"
        rc = main(
            ["tune", "--kernel", "cholesky", "--size", "large",
             "--max-evals", "5", "--csv", str(csv)]
        )
        assert rc == 0
        lines = csv.read_text().strip().splitlines()
        assert lines[0] == "eval,elapsed_s,runtime_s"
        assert len(lines) == 6

    def test_xgb_cap_flag(self, capsys):
        rc = main(
            ["tune", "--kernel", "cholesky", "--size", "large",
             "--tuner", "AutoTVM-XGB", "--max-evals", "60", "--no-xgb-cap"]
        )
        assert rc == 0
        assert "60 evals" in capsys.readouterr().out

    def test_bad_kernel_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["tune", "--kernel", "fft", "--size", "large"])


class TestExperiment:
    def test_runs_named_experiment(self, capsys, tmp_path):
        csv = tmp_path / "exp.csv"
        rc = main(["experiment", "lu-large", "--evals", "6", "--csv", str(csv)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Figures 4-5" in out
        assert "Minimum runtimes" in out
        assert csv.read_text().startswith("tuner,eval,elapsed_s,runtime_s")

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestAblation:
    def test_kappa(self, capsys):
        assert main(["ablation", "kappa", "--evals", "8"]) == 0
        assert "kappa=" in capsys.readouterr().out

    def test_measure(self, capsys):
        assert main(["ablation", "measure", "--evals", "8"]) == 0
        assert "n_parallel" in capsys.readouterr().out


class TestAutoschedule:
    def test_runs_on_3mm(self, capsys):
        rc = main(["autoschedule", "--kernel", "3mm", "--size", "large",
                   "--trials", "10"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "sketch parameters" in out
        assert "E.y" in out and "G.x" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
