"""Tests for the proposed framework front-end (repro.core)."""

import pytest

from repro.common.errors import TuningError
from repro.core import AutotuneConfig, BayesianAutotuner
from repro.kernels import get_benchmark
from repro.kernels.extra import gemm_tuned


class TestAutotuneConfig:
    def test_defaults(self):
        cfg = AutotuneConfig()
        # kappa default is 1.0 — calibrated for the bootstrap-forest std (see
        # AutotuneConfig docstring).
        assert cfg.max_evals == 100 and cfg.kappa == 1.0

    def test_validation(self):
        with pytest.raises(TuningError):
            AutotuneConfig(max_evals=0)
        with pytest.raises(TuningError):
            AutotuneConfig(n_initial_points=0)


class TestForBenchmark:
    def test_swing_backend_runs(self):
        bench = get_benchmark("cholesky", "large")
        tuner = BayesianAutotuner.for_benchmark(
            bench, AutotuneConfig(max_evals=10, seed=0)
        )
        result = tuner.run()
        assert result.n_evals == 10
        assert result.best_runtime > 0
        # All proposed tiles are divisors of N=2000.
        assert 2000 % result.best_config["P0"] == 0

    def test_unknown_backend_rejected(self):
        bench = get_benchmark("lu", "large")
        with pytest.raises(TuningError):
            BayesianAutotuner.for_benchmark(bench, backend="tpu")

    def test_best_matches_search_result(self):
        bench = get_benchmark("lu", "large")
        tuner = BayesianAutotuner.for_benchmark(
            bench, AutotuneConfig(max_evals=8, seed=1)
        )
        result = tuner.run()
        cfg, cost = tuner.best()
        assert cost == result.best_runtime

    def test_run_max_evals_override(self):
        bench = get_benchmark("lu", "large")
        tuner = BayesianAutotuner.for_benchmark(
            bench, AutotuneConfig(max_evals=100, seed=0)
        )
        result = tuner.run(max_evals=5)
        assert result.n_evals == 5


class TestForScheduleBuilder:
    def test_local_real_execution(self):
        from repro.configspace import ConfigurationSpace, OrdinalHyperparameter

        space = ConfigurationSpace(seed=0)
        space.add_hyperparameters(
            [
                OrdinalHyperparameter("P0", [1, 2, 4, 8]),
                OrdinalHyperparameter("P1", [1, 2, 4, 8]),
            ]
        )
        tuner = BayesianAutotuner.for_schedule_builder(
            space,
            lambda p: gemm_tuned(16, 16, 16, p),
            config=AutotuneConfig(max_evals=6, n_initial_points=3, seed=0),
        )
        result = tuner.run()
        assert result.n_evals == 6
        assert result.best_runtime > 0
