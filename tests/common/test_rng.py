"""Tests for repro.common.rng."""

import numpy as np

from repro.common.rng import ensure_rng, spawn_rng, stable_hash01, stable_hash_u64


class TestEnsureRng:
    def test_from_int_seed_deterministic(self):
        a = ensure_rng(7).integers(0, 1000, size=5)
        b = ensure_rng(7).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert ensure_rng(g) is g

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRng:
    def test_child_independent_but_deterministic(self):
        a = spawn_rng(ensure_rng(1)).integers(0, 10**9)
        b = spawn_rng(ensure_rng(1)).integers(0, 10**9)
        assert a == b

    def test_children_differ(self):
        parent = ensure_rng(2)
        a = spawn_rng(parent).integers(0, 10**9)
        b = spawn_rng(parent).integers(0, 10**9)
        assert a != b


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash_u64("x", 1, (2, 3)) == stable_hash_u64("x", 1, (2, 3))

    def test_different_inputs_differ(self):
        assert stable_hash_u64("a") != stable_hash_u64("b")

    def test_order_sensitive(self):
        assert stable_hash_u64(1, 2) != stable_hash_u64(2, 1)

    def test_hash01_in_unit_interval(self):
        for i in range(200):
            v = stable_hash01("test", i)
            assert 0.0 <= v < 1.0

    def test_hash01_spreads(self):
        vals = [stable_hash01("spread", i) for i in range(500)]
        assert 0.4 < float(np.mean(vals)) < 0.6
