"""Tests for repro.common.tabulate."""

from repro.common.tabulate import format_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table([["a", 1], ["long", 22]], headers=["col", "n"])
        lines = out.splitlines()
        assert lines[0].startswith("col")
        assert "----" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        out = format_table([[1]], title="T")
        assert out.splitlines()[0] == "T"

    def test_float_formatting(self):
        out = format_table([[3.14159265]])
        assert "3.142" in out

    def test_ragged_rows_padded(self):
        out = format_table([[1, 2], [3]], headers=["a", "b"])
        assert len(out.splitlines()) == 4  # header, rule, two rows

    def test_empty_rows(self):
        assert format_table([]) == ""

    def test_no_trailing_whitespace(self):
        out = format_table([["x", 1], ["yy", 2]])
        assert all(line == line.rstrip() for line in out.splitlines())
