"""Tests for repro.common.divisors."""

import pytest
from hypothesis import given, strategies as st

from repro.common.divisors import common_factors, divisors, split_candidates


class TestDivisors:
    def test_one(self):
        assert divisors(1) == [1]

    def test_prime(self):
        assert divisors(13) == [1, 13]

    def test_composite(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]

    def test_perfect_square(self):
        assert divisors(36) == [1, 2, 3, 4, 6, 9, 12, 18, 36]

    def test_paper_2000_has_20_divisors(self):
        # Table 1: LU/Cholesky large space is 400 = 20².
        assert len(divisors(2000)) == 20

    def test_paper_4000_has_24_divisors(self):
        # Table 1: LU/Cholesky extralarge space is 576 = 24².
        assert len(divisors(4000)) == 24

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            divisors(0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            divisors(-6)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_every_divisor_divides(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(ds)
        assert ds[0] == 1 and ds[-1] == n

    @given(st.integers(min_value=1, max_value=5_000))
    def test_divisor_count_matches_bruteforce(self, n):
        assert divisors(n) == [d for d in range(1, n + 1) if n % d == 0]

    @given(st.integers(min_value=1, max_value=1_000_000))
    def test_factorizations_multiply_back_to_extent(self, n):
        """Every divisor pairs with a cofactor: d * (n // d) == n exactly.

        This is what guarantees tiling-factor splits from divisors() cover a
        loop with no remainder iteration (the paper's perfect-split spaces)."""
        for d in divisors(n):
            assert d * (n // d) == n

    @given(st.integers(min_value=1, max_value=100_000))
    def test_divisors_closed_under_cofactor(self, n):
        ds = set(divisors(n))
        assert {n // d for d in ds} == ds

    @given(st.integers(min_value=1, max_value=10_000))
    def test_no_duplicates(self, n):
        ds = divisors(n)
        assert len(ds) == len(set(ds))


class TestCommonFactors:
    def test_basic(self):
        assert common_factors(8, 12) == [1, 2, 4]

    def test_single_argument(self):
        assert common_factors(10) == [1, 2, 5, 10]

    def test_coprime(self):
        assert common_factors(9, 16) == [1]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            common_factors()

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=4))
    def test_factors_divide_all(self, extents):
        for f in common_factors(*extents):
            assert all(e % f == 0 for e in extents)


class TestSplitCandidates:
    def test_no_cap(self):
        assert split_candidates(12) == [1, 2, 3, 4, 6, 12]

    def test_with_cap(self):
        assert split_candidates(12, max_factor=4) == [1, 2, 3, 4]

    def test_cap_below_one_gives_empty(self):
        assert split_candidates(12, max_factor=0) == []
