"""Tests for repro.common.timing."""

import pytest

from repro.common.timing import Stopwatch, VirtualClock


class TestStopwatch:
    def test_elapsed_nonnegative_and_monotone(self):
        sw = Stopwatch()
        a = sw.elapsed()
        b = sw.elapsed()
        assert 0 <= a <= b

    def test_restart_resets(self):
        sw = Stopwatch()
        sw.elapsed()
        sw.restart()
        assert sw.elapsed() < 1.0


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        c = VirtualClock()
        c.advance(1.5)
        c.advance(2.5)
        assert c.now == pytest.approx(4.0)

    def test_advance_returns_new_time(self):
        assert VirtualClock().advance(3.0) == pytest.approx(3.0)

    def test_elapsed_aliases_now(self):
        c = VirtualClock()
        c.advance(7.0)
        assert c.elapsed() == c.now

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-1.0)

    def test_negative_start_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)
