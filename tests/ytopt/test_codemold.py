"""Tests for code molds and the Plopper."""

import pytest

from repro.common.errors import SpaceError
from repro.runtime import build
from repro.ytopt import CodeMold, Plopper

MOLD = """
def build_schedule():
    A = te.placeholder((8, 6), name="A")
    B = te.placeholder((6, 4), name="B")
    k = te.reduce_axis((0, 6), name="k")
    C = te.compute((8, 4), lambda i, j: te.sum(A[i, k] * B[k, j], axis=k), name="C")
    s = te.create_schedule(C.op)
    y, x = s[C].op.axis
    yo, yi = s[C].split(y, #P0)
    xo, xi = s[C].split(x, #P1)
    return s, [A, B, C]
"""


class TestCodeMold:
    def test_params_detected_in_order(self):
        assert CodeMold(MOLD).params == ("P0", "P1")

    def test_duplicate_markers_deduped(self):
        mold = CodeMold("x = #P0 + #P0 + #P1")
        assert mold.params == ("P0", "P1")

    def test_no_markers_rejected(self):
        with pytest.raises(SpaceError):
            CodeMold("def f(): pass")

    def test_instantiate_substitutes_all(self):
        src = CodeMold(MOLD).instantiate({"P0": 4, "P1": 2})
        assert "#P" not in src
        assert "split(y, 4)" in src
        assert "split(x, 2)" in src

    def test_missing_value_rejected(self):
        with pytest.raises(SpaceError):
            CodeMold(MOLD).instantiate({"P0": 4})

    def test_extra_value_rejected(self):
        with pytest.raises(SpaceError):
            CodeMold(MOLD).instantiate({"P0": 4, "P1": 2, "P9": 1})

    def test_named_markers(self):
        mold = CodeMold("split(y, #Ptile)")
        assert mold.params == ("Ptile",)
        assert mold.instantiate({"Ptile": 16}) == "split(y, 16)"


class TestPlopper:
    def test_build_returns_schedule(self):
        plopper = Plopper(MOLD)
        sched, args = plopper.build({"P0": 4, "P1": 2})
        assert len(args) == 3
        mod = build(sched, args)
        assert mod.backend in ("tensor", "codegen", "interp")

    def test_executes_correctly(self, rng):
        import numpy as np

        plopper = Plopper(MOLD)
        sched, args = plopper.build({"P0": 2, "P1": 4})
        mod = build(sched, args)
        a = rng.random((8, 6)).astype("float32")
        b = rng.random((6, 4)).astype("float32")
        c = np.zeros((8, 4), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_missing_entry_rejected(self):
        plopper = Plopper("x = #P0", entry="build_schedule")
        with pytest.raises(SpaceError):
            plopper.build({"P0": 1})

    def test_syntax_error_reported(self):
        plopper = Plopper("def build_schedule(:\n    pass #P0")
        with pytest.raises(SpaceError):
            plopper.build({"P0": 1})

    def test_wrong_return_type_rejected(self):
        plopper = Plopper("def build_schedule():\n    return #P0, []")
        with pytest.raises(SpaceError):
            plopper.build({"P0": 1})

    def test_schedule_builder_adapter(self):
        builder = Plopper(MOLD).schedule_builder()
        sched, args = builder({"P0": 2, "P1": 2})
        assert len(args) == 3
