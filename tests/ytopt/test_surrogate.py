"""Tests for surrogate models."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.ytopt import DummySurrogate, GBTSurrogate, RandomForestSurrogate


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    X = rng.random((60, 4))
    y = np.exp(2 * X[:, 0])  # positive costs spanning a range
    return X, y


class TestRandomForestSurrogate:
    def test_predict_shapes(self, data):
        X, y = data
        s = RandomForestSurrogate(seed=0)
        s.fit(X, y)
        mean, std = s.predict(X[:5])
        assert mean.shape == std.shape == (5,)

    def test_log_cost_space(self, data):
        X, y = data
        s = RandomForestSurrogate(seed=0)
        s.fit(X, y)
        mean, _ = s.predict(X)
        # Predictions are in log space: bounded by log of target range.
        assert mean.min() >= np.log(y.min()) - 1e-9
        assert mean.max() <= np.log(y.max()) + 1e-9

    def test_nonpositive_cost_rejected_in_log_mode(self, data):
        X, _ = data
        s = RandomForestSurrogate()
        with pytest.raises(ReproError):
            s.fit(X, np.zeros(X.shape[0]))

    def test_linear_mode_allows_any_cost(self, data):
        X, _ = data
        s = RandomForestSurrogate(log_cost=False, seed=0)
        s.fit(X, np.linspace(-1, 1, X.shape[0]))
        mean, _ = s.predict(X[:3])
        assert mean.shape == (3,)

    def test_predict_before_fit(self, data):
        X, _ = data
        with pytest.raises(ReproError):
            RandomForestSurrogate().predict(X)


class TestGBTSurrogate:
    def test_predict_shapes(self, data):
        X, y = data
        s = GBTSurrogate(seed=0)
        s.fit(X, y)
        mean, std = s.predict(X[:4])
        assert mean.shape == std.shape == (4,)
        assert (std >= 0).all()

    def test_needs_two_members(self):
        with pytest.raises(ReproError):
            GBTSurrogate(n_models=1)

    def test_learns(self, data):
        X, y = data
        s = GBTSurrogate(seed=0)
        s.fit(X, y)
        mean, _ = s.predict(X)
        corr = np.corrcoef(mean, np.log(y))[0, 1]
        assert corr > 0.9


class TestDummySurrogate:
    def test_constant_prediction(self, data):
        X, y = data
        s = DummySurrogate()
        s.fit(X, y)
        mean, std = s.predict(X[:6])
        assert np.allclose(mean, mean[0])
        assert np.allclose(std, 1.0)


class TestDegenerateCorpusGuard:
    """RF fit refuses corpora it cannot learn from, loudly and early."""

    def test_single_sample_refused(self):
        with pytest.raises(ReproError, match="at least 2 observations"):
            RandomForestSurrogate(seed=0).fit(
                np.ones((1, 3)), np.asarray([1.0])
            )

    def test_empty_corpus_refused(self):
        with pytest.raises(ReproError, match="0 sample"):
            RandomForestSurrogate(seed=0).fit(
                np.empty((0, 3)), np.empty(0)
            )

    def test_constant_targets_refused(self, data):
        X, _ = data
        with pytest.raises(ReproError, match="constant targets"):
            RandomForestSurrogate(seed=0).fit(X, np.full(X.shape[0], 2.5))

    def test_two_distinct_samples_fit_fine(self):
        s = RandomForestSurrogate(seed=0)
        s.fit(np.asarray([[0.0], [1.0]]), np.asarray([1.0, 2.0]))
        mean, std = s.predict(np.asarray([[0.5]]))
        assert np.isfinite(mean).all() and np.isfinite(std).all()


class TestGaussianProcessSurrogate:
    def test_predict_shapes(self, data):
        from repro.ytopt import GaussianProcessSurrogate

        X, y = data
        s = GaussianProcessSurrogate()
        s.fit(X, y)
        mean, std = s.predict(X[:5])
        assert mean.shape == std.shape == (5,)
        assert (std >= 0).all()

    def test_interpolates_training_points(self, data):
        from repro.ytopt import GaussianProcessSurrogate

        X, y = data
        s = GaussianProcessSurrogate()
        s.fit(X, y)
        mean, std = s.predict(X)
        # Small noise floor: near-exact interpolation, variance near zero.
        assert np.allclose(mean, np.log(y), atol=0.05)
        assert std.max() < 0.25

    def test_deterministic_without_rng(self, data):
        from repro.ytopt import GaussianProcessSurrogate

        X, y = data
        preds = []
        for seed in (None, 0, 1234):  # seed accepted but unused
            s = GaussianProcessSurrogate(seed=seed)
            s.fit(X, y)
            preds.append(s.predict(X[:10]))
        for mean, std in preds[1:]:
            np.testing.assert_array_equal(mean, preds[0][0])
            np.testing.assert_array_equal(std, preds[0][1])

    def test_variance_grows_away_from_data(self, data):
        from repro.ytopt import GaussianProcessSurrogate

        X, y = data
        s = GaussianProcessSurrogate()
        s.fit(X, y)
        _, std_near = s.predict(X[:1])
        _, std_far = s.predict(np.full((1, X.shape[1]), 25.0))
        assert std_far[0] > std_near[0]

    def test_degenerate_corpora_refused(self, data):
        from repro.ytopt import GaussianProcessSurrogate

        X, _ = data
        with pytest.raises(ReproError):
            GaussianProcessSurrogate().fit(np.ones((1, 3)), np.asarray([1.0]))
        with pytest.raises(ReproError):
            GaussianProcessSurrogate().fit(X, np.full(X.shape[0], 2.5))
        with pytest.raises(ReproError):
            GaussianProcessSurrogate().predict(X)  # before fit

    def test_invalid_hyperparameters_refused(self):
        from repro.ytopt import GaussianProcessSurrogate

        with pytest.raises(ReproError):
            GaussianProcessSurrogate(noise_var=0.0)
        with pytest.raises(ReproError):
            GaussianProcessSurrogate(lengthscale=-1.0)
