"""Warm-start round trip: store → WarmStart → pre-trained search.

Run A archives its trials in the telemetry run store; run B warm-starts from
that store. The contract: stored configurations are never re-measured, a
matching budget replays run A's best without measuring anything, and runs
whose search space does not hash-match are ignored wholesale.
"""

from __future__ import annotations

import pytest

from repro.common.errors import ReproError
from repro.configspace import space_hash
from repro.experiments import run_tuner
from repro.kernels import get_benchmark
from repro.telemetry import (
    RecordingSink,
    RunFinished,
    RunStarted,
    RunStore,
    StoreSink,
    Telemetry,
    TrialMeasured,
    telemetry_session,
)
from repro.ytopt.warmstart import WarmStart


def _traced(db_path, **kw):
    """One traced ytopt run on lu/large, archived into ``db_path``."""
    tel = Telemetry(sinks=[StoreSink(RunStore(db_path), own_store=True)])
    with telemetry_session(tel):
        run = run_tuner(get_benchmark("lu", "large"), "ytopt", **kw)
    tel.close()
    return run


def _manual_run(store, seed, trials, hash_value, kernel="lu", size="large"):
    run_id = f"{kernel}:{size}:ytopt:seed{seed}"
    store.save_run(
        RunStarted(
            run_id=run_id,
            kernel=kernel,
            size_name=size,
            tuner="ytopt",
            seed=seed,
            max_evals=len(trials),
            metadata={"space_hash": hash_value},
        ),
        RunFinished(
            run_id=run_id,
            best_runtime=min(t.runtime for t in trials),
            best_config=trials[0].config,
            n_evals=len(trials),
            total_time=trials[-1].elapsed,
        ),
        trials,
    )


def _trial(config, runtime, elapsed, fidelity="full"):
    return TrialMeasured(
        config=config,
        runtime=runtime,
        compile_time=0.1,
        elapsed=elapsed,
        fidelity=fidelity,
    )


class TestSpaceHash:
    def test_stable_across_seeds_and_instances(self):
        bench = get_benchmark("lu", "large")
        assert space_hash(bench.config_space(seed=0)) == space_hash(
            bench.config_space(seed=99)
        )

    def test_different_spaces_hash_differently(self):
        # lu and cholesky share an identical (P0, P1) space — the hash covers
        # the space's *shape*, not its name — so compare against 3mm, whose
        # parameter set genuinely differs.
        lu = get_benchmark("lu", "large").config_space(seed=0)
        mm = get_benchmark("3mm", "large").config_space(seed=0)
        assert space_hash(lu) != space_hash(mm)


class TestFromStore:
    def test_loads_matching_records(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        a = _traced(db, max_evals=10, seed=0)
        space = get_benchmark("lu", "large").config_space(seed=0)
        ws = WarmStart.from_store(db, "lu", "large", space)
        assert ws.matched_runs == 1
        assert ws.skipped_runs == 0
        assert len(ws) == 10
        assert min(r.runtime for r in ws.database if r.ok) == a.best_runtime

    def test_mismatched_space_hash_skips_the_run(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        space = get_benchmark("lu", "large").config_space(seed=0)
        with RunStore(db) as store:
            _manual_run(
                store, 0, [_trial({"P0": 8}, 1.0, 5.0)], hash_value="0000deadbeef"
            )
        ws = WarmStart.from_store(db, "lu", "large", space)
        assert ws.matched_runs == 0
        assert ws.skipped_runs == 1
        assert len(ws) == 0

    def test_pruned_rows_are_dropped(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        space = get_benchmark("lu", "large").config_space(seed=0)
        good = space_hash(space)
        with RunStore(db) as store:
            _manual_run(
                store,
                0,
                [
                    _trial({"P0": 8}, 1.0, 5.0),
                    _trial({"P0": 16}, 2.0, 6.0, fidelity="pruned"),
                    _trial({"P0": 32}, 1.5, 7.0, fidelity="probe"),
                ],
                hash_value=good,
            )
        ws = WarmStart.from_store(db, "lu", "large", space)
        assert len(ws) == 2  # pruned dropped, probe kept (it was measured)
        assert ws.skipped_records == 1
        assert {r.fidelity for r in ws.database} == {"full", "probe"}

    def test_duplicate_configs_deduped_across_runs(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        space = get_benchmark("lu", "large").config_space(seed=0)
        good = space_hash(space)
        trials = [_trial({"P0": 8}, 1.0, 5.0), _trial({"P0": 16}, 2.0, 6.0)]
        with RunStore(db) as store:
            _manual_run(store, 0, trials, hash_value=good)
            _manual_run(store, 1, trials, hash_value=good)
        ws = WarmStart.from_store(db, "lu", "large", space)
        assert ws.matched_runs == 2
        assert len(ws) == 2
        assert ws.skipped_records == 2

    def test_max_records_caps_the_load(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        _traced(db, max_evals=10, seed=0)
        space = get_benchmark("lu", "large").config_space(seed=0)
        ws = WarmStart.from_store(db, "lu", "large", space, max_records=4)
        assert len(ws) == 4

    def test_missing_store_raises(self, tmp_path):
        space = get_benchmark("lu", "large").config_space(seed=0)
        with pytest.raises(ReproError, match="not found"):
            WarmStart.from_store(tmp_path / "nope.sqlite", "lu", "large", space)


class TestRoundTrip:
    def _warm(self, db, max_evals, seed=0):
        """Run B, warm-started; returns (run, measured TrialMeasured events)."""
        sink = RecordingSink()
        tel = Telemetry(sinks=[sink])
        with telemetry_session(tel):
            run = run_tuner(
                get_benchmark("lu", "large"),
                "ytopt",
                max_evals=max_evals,
                seed=seed,
                warm_start_db=str(db),
            )
        tel.close()
        measured = [e for e in sink.events if isinstance(e, TrialMeasured)]
        return run, measured

    def test_matching_budget_replays_without_measuring(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        a = _traced(db, max_evals=10, seed=0)
        b, measured = self._warm(db, max_evals=10)
        assert measured == []  # nothing re-measured, at any fidelity
        assert b.best_runtime == a.best_runtime
        assert b.best_config == a.best_config
        assert b.n_evals == 10  # warm-started records count toward the budget

    def test_larger_budget_never_remeasures_stored_configs(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        a = _traced(db, max_evals=10, seed=0)
        with RunStore(db) as store:
            (run_a,) = store.runs()
            stored = {
                tuple(sorted(e.config.items()))
                for e in store.evaluations(run_a.run_id)
            }
        b, measured = self._warm(db, max_evals=14)
        assert len(measured) == 4  # only the budget remainder is measured
        new = {tuple(sorted(e.config.items())) for e in measured}
        assert new.isdisjoint(stored)
        assert b.n_evals == 14
        assert b.best_runtime <= a.best_runtime

    def test_oversized_archive_still_replays_best(self, tmp_path):
        # More stored records than budget: nothing measured, best preserved.
        db = tmp_path / "runs.sqlite"
        a = _traced(db, max_evals=12, seed=0)
        b, measured = self._warm(db, max_evals=8)
        assert measured == []
        assert b.best_runtime == a.best_runtime

    def test_warm_start_ignored_for_autotvm_tuners(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        _traced(db, max_evals=10, seed=0)
        bench = get_benchmark("lu", "large")
        cold = run_tuner(bench, "AutoTVM-GA", max_evals=6, seed=0)
        warm = run_tuner(
            bench, "AutoTVM-GA", max_evals=6, seed=0, warm_start_db=str(db)
        )
        assert warm.trajectory == cold.trajectory


class TestShardRootResolution:
    """--warm-start-db can point at a service shard root, not just a file."""

    def _hash(self):
        return space_hash(get_benchmark("lu", "large").config_space())

    def test_unmerged_shards_are_discovered(self, tmp_path):
        from repro.service.shards import ShardedRunStore

        root = tmp_path / "service"
        sharded = ShardedRunStore(root)
        with sharded.open_shard("s1") as s1:
            _manual_run(s1, 0, [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)],
                        self._hash())
        with sharded.open_shard("s2") as s2:
            _manual_run(s2, 1, [_trial({"P0": 10, "P1": 8}, 2.0, 1.0)],
                        self._hash())
        ws = WarmStart.from_store(
            root, "lu", "large", get_benchmark("lu", "large").config_space()
        )
        assert len(ws) == 2

    def test_merged_plus_leftover_shard_deduplicates(self, tmp_path):
        from repro.service.shards import ShardedRunStore

        root = tmp_path / "service"
        sharded = ShardedRunStore(root)
        with sharded.open_shard("s1") as s1:
            _manual_run(s1, 0, [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)],
                        self._hash())
        sharded.merge(compact=False)  # shard file stays beside merged.sqlite
        ws = WarmStart.from_store(
            root, "lu", "large", get_benchmark("lu", "large").config_space()
        )
        assert len(ws) == 1


class TestCrossKernelLeakage:
    """lu and cholesky share a (shape-derived) space hash at equal size.

    The hash alone therefore cannot tell their archives apart — the kernel
    filter is the leakage barrier, and this pins it: cholesky warm-start must
    refuse lu history even though every hash matches. (Cross-kernel transfer
    is the transfer subsystem's job, which goes through task descriptors,
    not through warm-start replay.)
    """

    def test_same_size_solver_spaces_share_a_hash(self):
        assert space_hash(
            get_benchmark("lu", "large").config_space()
        ) == space_hash(get_benchmark("cholesky", "large").config_space())

    def test_warmstart_still_refuses_the_other_kernel(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        hv = space_hash(get_benchmark("lu", "large").config_space())
        with RunStore(db) as store:
            _manual_run(store, 0, [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)], hv,
                        kernel="lu")
        ws = WarmStart.from_store(
            db, "cholesky", "large",
            get_benchmark("cholesky", "large").config_space(),
        )
        assert len(ws) == 0

    def test_matching_kernel_still_loads(self, tmp_path):
        db = tmp_path / "runs.sqlite"
        hv = space_hash(get_benchmark("lu", "large").config_space())
        with RunStore(db) as store:
            _manual_run(store, 0, [_trial({"P0": 8, "P1": 8}, 1.0, 1.0)], hv,
                        kernel="lu")
        ws = WarmStart.from_store(
            db, "lu", "large", get_benchmark("lu", "large").config_space()
        )
        assert len(ws) == 1
