"""Tests for the TPE density-ratio optimizer."""

import numpy as np
import pytest

from repro.common.errors import TuningError
from repro.configspace import (
    ConfigurationSpace,
    OrdinalHyperparameter,
    UniformFloatHyperparameter,
)
from repro.ytopt import TPEOptimizer


def _space(seed=None):
    cs = ConfigurationSpace(seed=seed)
    cs.add_hyperparameter(OrdinalHyperparameter("P0", [1, 2, 4, 8, 16]))
    cs.add_hyperparameter(OrdinalHyperparameter("P1", [1, 3, 9, 27]))
    return cs


def _cost(config):
    # Minimum at P0=4, P1=9 — a smooth bowl over the candidate grid.
    return (np.log2(config["P0"] / 4) ** 2 + np.log(config["P1"] / 9) ** 2) + 0.1


class TestConstruction:
    def test_rejects_infinite_spaces(self):
        cs = ConfigurationSpace()
        cs.add_hyperparameter(UniformFloatHyperparameter("x", 0.0, 1.0))
        with pytest.raises(TuningError, match="finite"):
            TPEOptimizer(cs)

    def test_rejects_bad_hyperparameters(self):
        with pytest.raises(TuningError):
            TPEOptimizer(_space(), n_initial_points=0)
        with pytest.raises(TuningError):
            TPEOptimizer(_space(), gamma=1.0)
        with pytest.raises(TuningError):
            TPEOptimizer(_space(), n_candidates=0)
        with pytest.raises(TuningError):
            TPEOptimizer(_space(), prior_weight=0.0)


class TestAskTell:
    def test_initial_design_is_random_and_unseen(self):
        opt = TPEOptimizer(_space(), n_initial_points=5, seed=0)
        seen = set()
        for _ in range(5):
            c = opt.ask()
            key = (c["P0"], c["P1"])
            assert key not in seen
            seen.add(key)
            opt.tell(c, _cost(c))

    def test_tell_accepts_plain_mappings(self):
        opt = TPEOptimizer(_space(), seed=0)
        opt.tell({"P0": 4, "P1": 9}, 0.1)
        assert opt.n_told == 1
        config, cost = opt.best()
        assert config == {"P0": 4, "P1": 9} and cost == 0.1

    def test_tell_rejects_nonfinite_cost(self):
        opt = TPEOptimizer(_space(), seed=0)
        with pytest.raises(TuningError):
            opt.tell({"P0": 4, "P1": 9}, float("inf"))

    def test_best_before_tell(self):
        with pytest.raises(TuningError):
            TPEOptimizer(_space(), seed=0).best()

    def test_predict_cost_is_none(self):
        opt = TPEOptimizer(_space(), seed=0)
        opt.tell({"P0": 4, "P1": 9}, 0.1)
        assert opt.predict_cost({"P0": 1, "P1": 1}) is None

    def test_suggestions_avoid_told_configs(self):
        opt = TPEOptimizer(_space(), n_initial_points=3, seed=0)
        told = set()
        for _ in range(15):  # 20-config space: every ask stays fresh here
            c = opt.ask()
            key = (c["P0"], c["P1"])
            assert key not in told
            told.add(key)
            opt.tell(c, _cost(c))

    def test_ask_batch_returns_distinct_configs(self):
        opt = TPEOptimizer(_space(), n_initial_points=3, seed=0)
        for _ in range(4):
            c = opt.ask()
            opt.tell(c, _cost(c))
        n_told = opt.n_told
        batch = opt.ask_batch(3)
        assert len({(c["P0"], c["P1"]) for c in batch}) == 3
        assert opt.n_told == n_told  # constant liars retracted


class TestSearchBehavior:
    def test_deterministic_per_seed(self):
        def run(seed):
            opt = TPEOptimizer(_space(seed=seed), n_initial_points=4, seed=seed)
            out = []
            for _ in range(12):
                c = opt.ask()
                opt.tell(c, _cost(c))
                out.append((c["P0"], c["P1"]))
            return out

        assert run(0) == run(0)
        assert run(0) != run(1)  # different seed, different trajectory

    def test_concentrates_on_good_region(self):
        # After warmup, density-ratio suggestions should find the bowl's
        # bottom in a 20-config space well before exhausting it.
        opt = TPEOptimizer(_space(seed=0), n_initial_points=5, seed=0)
        for _ in range(14):
            c = opt.ask()
            opt.tell(c, _cost(c))
        config, cost = opt.best()
        assert cost == pytest.approx(0.1)
        assert config == {"P0": 4, "P1": 9}

    def test_exhausted_space_still_asks(self):
        cs = ConfigurationSpace(seed=0)
        cs.add_hyperparameter(OrdinalHyperparameter("P0", [1, 2]))
        opt = TPEOptimizer(cs, n_initial_points=1, seed=0)
        for _ in range(4):  # more asks than configs: duplicates allowed at end
            c = opt.ask()
            opt.tell(c, 1.0 + c["P0"])
        assert opt.n_told == 4
