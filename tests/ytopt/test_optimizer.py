"""Tests for the ask/tell Bayesian optimizer."""

import numpy as np
import pytest

from repro.common.errors import TuningError
from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.ytopt import Optimizer
from repro.ytopt.surrogate import DummySurrogate


def _space(seed=None, n=16):
    cs = ConfigurationSpace(seed=seed)
    cs.add_hyperparameters(
        [
            OrdinalHyperparameter("a", list(range(n))),
            OrdinalHyperparameter("b", list(range(n))),
        ]
    )
    return cs


def _cost(cfg):
    # Smooth bowl with optimum at (12, 4); strictly positive for log-cost.
    return 1.0 + (cfg["a"] - 12) ** 2 + (cfg["b"] - 4) ** 2


class TestAskTell:
    def test_initial_phase_is_random_unseen(self):
        opt = Optimizer(_space(seed=0), n_initial_points=5, seed=0)
        seen = set()
        for _ in range(5):
            c = opt.ask()
            key = (c["a"], c["b"])
            assert key not in seen
            seen.add(key)
            opt.tell(c, _cost(c))

    def test_tell_accepts_plain_dict(self):
        opt = Optimizer(_space(seed=0), seed=0)
        opt.tell({"a": 1, "b": 2}, 5.0)
        assert opt.n_told == 1

    def test_tell_rejects_nonfinite(self):
        opt = Optimizer(_space(seed=0), seed=0)
        with pytest.raises(TuningError):
            opt.tell({"a": 1, "b": 2}, float("inf"))

    def test_best_before_tell_rejected(self):
        with pytest.raises(TuningError):
            Optimizer(_space(), seed=0).best()

    def test_best_returns_min(self):
        opt = Optimizer(_space(seed=0), seed=0)
        opt.tell({"a": 0, "b": 0}, 10.0)
        opt.tell({"a": 12, "b": 4}, 1.0)
        opt.tell({"a": 3, "b": 3}, 5.0)
        cfg, cost = opt.best()
        assert cost == 1.0 and cfg == {"a": 12, "b": 4}

    def test_no_duplicate_proposals_in_model_phase(self):
        opt = Optimizer(_space(seed=1), n_initial_points=4, seed=1)
        seen = set()
        for _ in range(30):
            c = opt.ask()
            key = (c["a"], c["b"])
            assert key not in seen, "optimizer re-proposed an evaluated config"
            seen.add(key)
            opt.tell(c, _cost(c))

    def test_validation(self):
        with pytest.raises(TuningError):
            Optimizer(_space(), n_initial_points=0)
        with pytest.raises(TuningError):
            Optimizer(_space(), n_candidates=0)
        with pytest.raises(TuningError):
            Optimizer(_space(), refit_interval=0)


class TestSearchQuality:
    def _run(self, opt, budget=35):
        best = float("inf")
        for _ in range(budget):
            c = opt.ask()
            y = _cost(c)
            best = min(best, y)
            opt.tell(c, y)
        return best

    def test_bo_beats_random_on_average(self):
        bo_results = []
        rnd_results = []
        for seed in range(5):
            bo_results.append(
                self._run(Optimizer(_space(seed=seed), n_initial_points=8, seed=seed))
            )
            rnd_results.append(
                self._run(
                    Optimizer(
                        _space(seed=100 + seed),
                        surrogate=DummySurrogate(),
                        n_initial_points=8,
                        seed=100 + seed,
                    )
                )
            )
        assert float(np.mean(bo_results)) <= float(np.mean(rnd_results))

    def test_bo_finds_near_optimum(self):
        best = self._run(Optimizer(_space(seed=3), n_initial_points=8, seed=3), budget=45)
        assert best <= 10.0  # within short distance of the optimum (cost 1)

    def test_seeded_run_deterministic(self):
        def trace(seed):
            opt = Optimizer(_space(seed=seed), n_initial_points=5, seed=seed)
            out = []
            for _ in range(15):
                c = opt.ask()
                out.append((c["a"], c["b"]))
                opt.tell(c, _cost(c))
            return out

        assert trace(7) == trace(7)
