"""Tests for search resumption (checkpoint/restart via the performance DB)."""

import pytest

from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator
from repro.ytopt import AMBS, TuningProblem


def _problem(seed=0):
    bench = get_benchmark("cholesky", "large")
    evaluator = SwingEvaluator(bench.profile, clock=VirtualClock())
    return TuningProblem(bench.config_space(seed=seed), evaluator, name="chol")


class TestResume:
    def test_resume_carries_records(self):
        first = AMBS(_problem(seed=0), max_evals=10, seed=0).run()
        resumed = AMBS(
            _problem(seed=1), max_evals=5, seed=1, resume_from=first.database
        ).run()
        assert resumed.n_evals == 15  # 10 old + 5 new

    def test_resume_never_remeasures(self):
        first = AMBS(_problem(seed=0), max_evals=12, seed=0).run()
        old = {tuple(sorted(r.config.items())) for r in first.database}
        resumed = AMBS(
            _problem(seed=2), max_evals=8, seed=2, resume_from=first.database
        ).run()
        new = [
            tuple(sorted(r.config.items()))
            for r in resumed.database.records()[len(first.database):]
        ]
        assert not (set(new) & old)

    def test_resume_best_never_regresses(self):
        first = AMBS(_problem(seed=0), max_evals=15, seed=0).run()
        resumed = AMBS(
            _problem(seed=3), max_evals=5, seed=3, resume_from=first.database
        ).run()
        assert resumed.best_runtime <= first.best_runtime

    def test_resume_via_csv_roundtrip(self, tmp_path):
        from repro.ytopt import PerformanceDatabase

        first = AMBS(_problem(seed=0), max_evals=8, seed=0).run()
        path = tmp_path / "ckpt.csv"
        first.database.to_csv(path)
        loaded = PerformanceDatabase.from_csv(path)
        resumed = AMBS(
            _problem(seed=4), max_evals=4, seed=4, resume_from=loaded
        ).run()
        assert resumed.n_evals == 12
