"""Tests for the AMBS search loop."""

import pytest

from repro.common.errors import TuningError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator
from repro.ytopt import AMBS, TuningProblem


def _problem(seed=0, **ev_kwargs):
    bench = get_benchmark("lu", "large")
    evaluator = SwingEvaluator(bench.profile, clock=VirtualClock(), **ev_kwargs)
    return TuningProblem(bench.config_space(seed=seed), evaluator, name="lu-large")


class TestAMBS:
    def test_runs_max_evals(self):
        search = AMBS(_problem(), max_evals=12, seed=0)
        result = search.run()
        assert result.n_evals == 12
        assert result.best_runtime > 0
        assert result.best_config  # non-empty

    def test_database_populated(self):
        search = AMBS(_problem(), max_evals=8, seed=0)
        result = search.run()
        assert len(result.database) == 8
        assert result.database.best().runtime == result.best_runtime

    def test_process_time_accumulates(self):
        search = AMBS(_problem(), max_evals=5, seed=0)
        result = search.run()
        traj = result.database.trajectory()
        times = [t for t, _ in traj]
        assert times == sorted(times)
        assert result.total_elapsed == times[-1]

    def test_max_time_stops_early(self):
        # Virtual seconds: LU-large evals take ~2s+ each, so a tight budget
        # must cut the run short.
        search = AMBS(_problem(), max_evals=100, max_time=30.0, seed=0)
        result = search.run()
        assert result.n_evals < 100

    def test_optimizer_overhead_charged(self):
        p1 = _problem(seed=0)
        r1 = AMBS(p1, max_evals=5, seed=0, optimizer_overhead=0.0).run()
        p2 = _problem(seed=0)
        r2 = AMBS(p2, max_evals=5, seed=0, optimizer_overhead=10.0).run()
        assert r2.total_elapsed > r1.total_elapsed + 40.0

    def test_validation(self):
        with pytest.raises(TuningError):
            AMBS(_problem(), max_evals=0)
        with pytest.raises(TuningError):
            AMBS(_problem(), max_time=-1.0)

    def test_seeded_determinism(self):
        r1 = AMBS(_problem(seed=3), max_evals=10, seed=3).run()
        r2 = AMBS(_problem(seed=3), max_evals=10, seed=3).run()
        assert r1.best_config == r2.best_config
        assert r1.best_runtime == r2.best_runtime
