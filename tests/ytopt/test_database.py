"""Tests for the performance database."""

import math

import pytest

from repro.common.errors import TuningError
from repro.runtime.measure import FAILED_COST, MeasureResult
from repro.ytopt import PerformanceDatabase


def _result(cost, t, cfg=None, error=None):
    return MeasureResult(
        config=cfg or {"P0": 1},
        costs=(cost,) if error is None else (),
        compile_time=0.5,
        timestamp=t,
        error=error,
    )


class TestDatabase:
    def test_add_and_len(self):
        db = PerformanceDatabase()
        db.add(_result(1.0, 1.0), tuner="t")
        db.add(_result(2.0, 2.0), tuner="t")
        assert len(db) == 2

    def test_best_ignores_failures(self):
        db = PerformanceDatabase()
        db.add(_result(5.0, 1.0), tuner="t")
        db.add(_result(0.0, 2.0, error="boom"), tuner="t")
        db.add(_result(2.0, 3.0, cfg={"P0": 9}), tuner="t")
        best = db.best()
        assert best.runtime == 2.0 and best.config == {"P0": 9}

    def test_best_empty_rejected(self):
        with pytest.raises(TuningError):
            PerformanceDatabase().best()

    def test_best_all_failed_rejected(self):
        db = PerformanceDatabase()
        db.add(_result(0.0, 1.0, error="x"), tuner="t")
        with pytest.raises(TuningError):
            db.best()

    def test_trajectory(self):
        db = PerformanceDatabase()
        db.add(_result(3.0, 1.0), tuner="t")
        db.add(_result(1.0, 2.5), tuner="t")
        assert db.trajectory() == [(1.0, 3.0), (2.5, 1.0)]

    def test_failed_trajectory_uses_sentinel(self):
        db = PerformanceDatabase()
        db.add(_result(0.0, 1.0, error="x"), tuner="t")
        assert db.trajectory()[0][1] == FAILED_COST

    def test_best_so_far_monotone(self):
        db = PerformanceDatabase()
        for cost, t in [(5.0, 1), (7.0, 2), (2.0, 3), (9.0, 4)]:
            db.add(_result(cost, t), tuner="t")
        bsf = db.best_so_far()
        assert bsf == [5.0, 5.0, 2.0, 2.0]

    def test_best_so_far_starts_inf_on_failure(self):
        db = PerformanceDatabase()
        db.add(_result(0.0, 1.0, error="x"), tuner="t")
        assert math.isinf(db.best_so_far()[0])

    def test_total_elapsed(self):
        db = PerformanceDatabase()
        assert db.total_elapsed() == 0.0
        db.add(_result(1.0, 42.5), tuner="t")
        assert db.total_elapsed() == 42.5

    def test_csv_roundtrip(self, tmp_path):
        db = PerformanceDatabase("x")
        db.add(_result(1.5, 1.0, cfg={"P0": 4, "P1": 8}), tuner="ytopt")
        db.add(_result(0.0, 2.0, error="timeout"), tuner="ytopt")
        path = tmp_path / "db.csv"
        db.to_csv(path)
        loaded = PerformanceDatabase.from_csv(path)
        assert len(loaded) == 2
        assert loaded.records()[0].config == {"P0": 4, "P1": 8}
        assert loaded.records()[0].runtime == 1.5
        assert loaded.records()[1].error == "timeout"
