"""Tests for constant-liar batch proposals."""

import pytest

from repro.common.errors import TuningError
from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.ytopt import Optimizer


def _space(seed=None):
    cs = ConfigurationSpace(seed=seed)
    cs.add_hyperparameters(
        [
            OrdinalHyperparameter("a", list(range(12))),
            OrdinalHyperparameter("b", list(range(12))),
        ]
    )
    return cs


def _cost(cfg):
    return 1.0 + (cfg["a"] - 6) ** 2 + (cfg["b"] - 3) ** 2


class TestAskBatch:
    def test_batch_distinct(self):
        opt = Optimizer(_space(seed=0), n_initial_points=4, seed=0)
        batch = opt.ask_batch(6)
        keys = {(c["a"], c["b"]) for c in batch}
        assert len(keys) == 6

    def test_lies_retracted(self):
        opt = Optimizer(_space(seed=0), n_initial_points=4, seed=0)
        opt.tell({"a": 0, "b": 0}, 45.0)
        before = opt.n_told
        opt.ask_batch(5)
        assert opt.n_told == before  # no lie left behind

    def test_real_tells_after_batch(self):
        opt = Optimizer(_space(seed=1), n_initial_points=4, seed=1)
        for _ in range(4):
            batch = opt.ask_batch(4)
            for c in batch:
                opt.tell(c, _cost(c))
        cfg, cost = opt.best()
        assert cost == min(_cost(c) for c in [cfg]) or cost >= 1.0
        assert opt.n_told == 16

    def test_batch_does_not_repeat_told(self):
        opt = Optimizer(_space(seed=2), n_initial_points=2, seed=2)
        seen = set()
        for _ in range(6):
            for c in opt.ask_batch(4):
                key = (c["a"], c["b"])
                assert key not in seen
                seen.add(key)
                opt.tell(c, _cost(c))

    def test_bad_size_rejected(self):
        with pytest.raises(TuningError):
            Optimizer(_space(), seed=0).ask_batch(0)

    def test_no_lie_before_first_observation(self):
        """With an empty history there is no incumbent to lie with: the first
        batch is pure unseen sampling — the surrogate must never be touched
        and no phantom tell may remain."""

        class _Untouchable:
            def fit(self, X, y):
                raise AssertionError("surrogate fit before any real tell")

            def predict(self, X):
                raise AssertionError("surrogate predict before any real tell")

        opt = Optimizer(_space(seed=7), surrogate=_Untouchable(),
                        n_initial_points=2, seed=7)
        batch = opt.ask_batch(8)  # larger than n_initial_points on purpose
        assert len({(c["a"], c["b"]) for c in batch}) == 8
        assert opt.n_told == 0

    def test_first_batch_matches_sequential_asks(self):
        # Pure unseen sampling: the batch is the same configs sequential
        # ask() would have produced from the same seed.
        batch = Optimizer(_space(seed=4), n_initial_points=8, seed=4).ask_batch(6)
        opt = Optimizer(_space(seed=4), n_initial_points=8, seed=4)
        seq = [opt.ask() for _ in range(6)]
        assert [dict(c) for c in batch] == [dict(c) for c in seq]

    def test_model_phase_batch(self):
        # Batch asks in the model phase must work after the surrogate is fit.
        opt = Optimizer(_space(seed=3), n_initial_points=3, seed=3)
        for _ in range(3):
            c = opt.ask()
            opt.tell(c, _cost(c))
        batch = opt.ask_batch(5)
        assert len(batch) == 5
        for c in batch:
            opt.tell(c, _cost(c))
        assert opt.n_told == 8
