"""Tests for acquisition functions."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.ytopt.acquisition import (
    ExpectedImprovement,
    LowerConfidenceBound,
    ProbabilityOfImprovement,
)


class TestLCB:
    def test_prefers_low_mean(self):
        lcb = LowerConfidenceBound(kappa=0.0)
        scores = lcb.score(np.array([1.0, 2.0]), np.array([0.1, 0.1]), best_y=1.0)
        assert scores[0] < scores[1]

    def test_kappa_buys_exploration(self):
        mean = np.array([1.0, 1.2])
        std = np.array([0.0, 1.0])
        exploit = LowerConfidenceBound(kappa=0.0).score(mean, std, 1.0)
        explore = LowerConfidenceBound(kappa=3.0).score(mean, std, 1.0)
        assert np.argmin(exploit) == 0  # pure exploitation: low mean wins
        assert np.argmin(explore) == 1  # high uncertainty wins with big kappa

    def test_kappa_zero_is_mean(self):
        mean = np.array([3.0, 1.0, 2.0])
        scores = LowerConfidenceBound(kappa=0.0).score(mean, np.ones(3), 1.0)
        np.testing.assert_array_equal(scores, mean)

    def test_negative_kappa_rejected(self):
        with pytest.raises(ReproError):
            LowerConfidenceBound(kappa=-1.0)


class TestEI:
    def test_improvement_preferred(self):
        ei = ExpectedImprovement(xi=0.0)
        mean = np.array([0.5, 2.0])  # best so far is 1.0: first improves
        scores = ei.score(mean, np.array([0.1, 0.1]), best_y=1.0)
        assert scores[0] < scores[1]

    def test_zero_std_no_improvement(self):
        ei = ExpectedImprovement(xi=0.0)
        s = ei.score(np.array([2.0]), np.array([0.0]), best_y=1.0)
        assert s[0] == pytest.approx(0.0, abs=1e-9)

    def test_uncertainty_adds_value(self):
        ei = ExpectedImprovement(xi=0.0)
        s = ei.score(np.array([1.5, 1.5]), np.array([0.01, 1.0]), best_y=1.0)
        assert s[1] < s[0]  # more uncertain -> more (negative) EI

    def test_negative_xi_rejected(self):
        with pytest.raises(ReproError):
            ExpectedImprovement(xi=-0.1)


class TestPI:
    def test_scores_in_valid_range(self):
        pi = ProbabilityOfImprovement()
        s = pi.score(np.array([0.0, 1.0, 2.0]), np.ones(3), best_y=1.0)
        assert ((-1 <= s) & (s <= 0)).all()

    def test_clear_improvement_near_minus_one(self):
        pi = ProbabilityOfImprovement(xi=0.0)
        s = pi.score(np.array([-10.0]), np.array([0.1]), best_y=1.0)
        assert s[0] == pytest.approx(-1.0, abs=1e-6)
