"""BO on adversarial spaces: tiny, single-point, and conditional spaces.

The optimizer must stay correct when the space is smaller than the budget,
degenerate, or hierarchical (inactive parameters encode as -1).
"""

import pytest

from repro.configspace import (
    CategoricalHyperparameter,
    ConfigurationSpace,
    Constant,
    EqualsCondition,
    OrdinalHyperparameter,
)
from repro.ytopt import Optimizer


class TestTinySpaces:
    def test_single_point_space(self):
        cs = ConfigurationSpace(seed=0)
        cs.add_hyperparameter(Constant("k", 7))
        opt = Optimizer(cs, n_initial_points=2, seed=0)
        for _ in range(4):
            c = opt.ask()
            assert dict(c) == {"k": 7}
            opt.tell(c, 1.0)

    def test_space_smaller_than_budget(self):
        cs = ConfigurationSpace(seed=0)
        cs.add_hyperparameter(OrdinalHyperparameter("a", [1, 2, 3]))
        opt = Optimizer(cs, n_initial_points=2, seed=0)
        seen = []
        for _ in range(9):  # 3x the space size
            c = opt.ask()
            seen.append(c["a"])
            opt.tell(c, float(c["a"]))
        # The 3 distinct values appear; exhaustion falls back to re-sampling
        # without crashing.
        assert set(seen) == {1, 2, 3}

    def test_two_point_space_finds_min(self):
        cs = ConfigurationSpace(seed=1)
        cs.add_hyperparameter(OrdinalHyperparameter("a", [10, 20]))
        opt = Optimizer(cs, n_initial_points=2, seed=1)
        for _ in range(2):
            c = opt.ask()
            opt.tell(c, float(c["a"]))
        assert opt.best()[0] == {"a": 10}


class TestUnseenSampling:
    """`_sample_unseen` on small finite spaces: enumerate, don't collide.

    Rejection sampling alone would eventually propose duplicates while unseen
    configurations remain; the enumeration fallback guarantees every point of
    a small space is proposed exactly once before any repeat.
    """

    @staticmethod
    def _space(seed=0):
        cs = ConfigurationSpace(seed=seed)
        cs.add_hyperparameters(
            [
                OrdinalHyperparameter("a", [1, 2, 3, 4]),
                OrdinalHyperparameter("b", [10, 20, 30]),
            ]
        )
        return cs

    def test_no_duplicates_until_space_exhausted(self):
        cs = self._space(seed=0)
        opt = Optimizer(cs, n_initial_points=12, seed=0)
        seen = set()
        for _ in range(12):  # exactly the space size
            c = opt.ask()
            key = (c["a"], c["b"])
            assert key not in seen, f"duplicate {key} before exhaustion"
            seen.add(key)
            opt.tell(c, float(c["a"] + c["b"]))
        assert len(seen) == 12
        # Exhausted: the next ask re-samples (a duplicate) instead of raising.
        c = opt.ask()
        assert (c["a"], c["b"]) in seen

    def test_enumeration_fallback_is_deterministic(self):
        def run():
            opt = Optimizer(self._space(seed=3), n_initial_points=12, seed=3)
            out = []
            for _ in range(12):
                c = opt.ask()
                out.append((c["a"], c["b"]))
                opt.tell(c, 1.0 + c["a"])
            return out

        assert run() == run()

    def test_batch_exclude_respects_unseen(self):
        # One batch covering the whole space: every pick distinct.
        opt = Optimizer(self._space(seed=1), n_initial_points=12, seed=1)
        batch = opt.ask_batch(12)
        assert len({(c["a"], c["b"]) for c in batch}) == 12


class TestConditionalSpaces:
    def _space(self, seed=0):
        cs = ConfigurationSpace(seed=seed)
        algo = CategoricalHyperparameter("algo", ["tiled", "naive"])
        tile = OrdinalHyperparameter("tile", [2, 4, 8, 16])
        cs.add_hyperparameters([algo, tile])
        cs.add_condition(EqualsCondition(tile, algo, "tiled"))
        return cs

    @staticmethod
    def _cost(cfg):
        if cfg["algo"] == "naive":
            return 10.0
        return 1.0 + abs(cfg["tile"] - 8)  # optimum: tiled with tile=8

    def test_bo_navigates_conditional_space(self):
        cs = self._space(seed=0)
        opt = Optimizer(cs, n_initial_points=6, seed=0)
        for _ in range(14):
            c = opt.ask()
            opt.tell(c, self._cost(c))
        best_cfg, best_cost = opt.best()
        assert best_cfg["algo"] == "tiled"
        assert best_cost <= 3.0

    def test_inactive_params_encode_cleanly(self):
        cs = self._space(seed=1)
        naive = {"algo": "naive"}
        arr = cs.encode(naive)
        assert arr[1] == -1.0  # inactive 'tile'
        opt = Optimizer(cs, n_initial_points=3, seed=1)
        # Telling configs with and without 'tile' must coexist in one model.
        opt.tell({"algo": "naive"}, 10.0)
        opt.tell({"algo": "tiled", "tile": 8}, 1.0)
        opt.tell({"algo": "tiled", "tile": 2}, 6.0)
        for _ in range(5):
            c = opt.ask()
            opt.tell(c, self._cost(c))
        assert opt.best()[0]["algo"] == "tiled"

    def test_ask_batch_on_conditional_space(self):
        cs = self._space(seed=2)
        opt = Optimizer(cs, n_initial_points=3, seed=2)
        batch = opt.ask_batch(4)
        assert len(batch) == 4
        for c in batch:
            cs.check_configuration(dict(c))
