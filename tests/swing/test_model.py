"""Tests for the analytical Swing/A100 performance model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernels import get_benchmark
from repro.swing import SwingPerformanceModel


@pytest.fixture
def model():
    return SwingPerformanceModel()


@pytest.fixture
def lu_large():
    return get_benchmark("lu", "large").profile


class TestDeterminism:
    def test_kernel_time_deterministic(self, model, lu_large):
        cfg = {"P0": 40, "P1": 50}
        assert model.kernel_time(lu_large, cfg) == model.kernel_time(lu_large, cfg)

    def test_measured_time_deterministic(self, model, lu_large):
        cfg = {"P0": 40, "P1": 50}
        t1 = model.measured_time(lu_large, cfg, run_index=0)
        t2 = SwingPerformanceModel().measured_time(lu_large, cfg, run_index=0)
        assert t1 == t2

    def test_run_index_varies_noise(self, model, lu_large):
        cfg = {"P0": 40, "P1": 50}
        t0 = model.measured_time(lu_large, cfg, run_index=0)
        t1 = model.measured_time(lu_large, cfg, run_index=1)
        assert t0 != t1
        assert abs(t0 - t1) / t0 < 0.1  # bounded noise


class TestCalibration:
    @pytest.mark.parametrize(
        ("kernel", "size", "paper_best"),
        [
            ("lu", "large", 1.659),
            ("lu", "extralarge", 13.77),
            ("cholesky", "large", 1.65),
            ("cholesky", "extralarge", 13.99),
            ("3mm", "extralarge", 30.99),
        ],
    )
    def test_global_optimum_equals_paper_best(self, model, kernel, size, paper_best):
        profile = get_benchmark(kernel, size).profile
        _, raw_best = model.best_over_space(profile)
        scale = model.calibration_scale(profile)
        assert raw_best * scale == pytest.approx(paper_best, rel=1e-9)

    def test_scale_cached(self, model, lu_large):
        s1 = model.calibration_scale(lu_large)
        s2 = model.calibration_scale(lu_large)
        assert s1 == s2
        assert ("lu", "large") in model._scale_cache

    def test_no_paper_best_means_unit_scale(self, model):
        import dataclasses

        profile = dataclasses.replace(
            get_benchmark("lu", "large").profile, paper_best=None
        )
        assert model.calibration_scale(profile) == 1.0

    def test_best_config_uses_candidate_values(self, model, lu_large):
        cfg, _ = model.best_over_space(lu_large)
        assert cfg["P0"] in lu_large.candidates("P0")
        assert cfg["P1"] in lu_large.candidates("P1")


class TestLandscape:
    def test_tiny_tiles_much_slower_than_best(self, model, lu_large):
        _, best = model.best_over_space(lu_large)
        worst_corner = model.kernel_time(lu_large, {"P0": 1, "P1": 1})
        assert worst_corner > 50 * best

    def test_full_matrix_tile_slower_than_best(self, model, lu_large):
        _, best = model.best_over_space(lu_large)
        huge = model.kernel_time(lu_large, {"P0": 2000, "P1": 2000})
        assert huge > 1.5 * best

    def test_sweet_spot_is_interior(self, model, lu_large):
        cfg, _ = model.best_over_space(lu_large)
        cands = lu_large.candidates("P0")
        assert cands[0] < cfg["P0"] < cands[-1]

    def test_times_positive_over_whole_space(self, model, lu_large):
        for ty in lu_large.candidates("P0"):
            for tx in lu_large.candidates("P1"):
                assert model.kernel_time(lu_large, {"P0": ty, "P1": tx}) > 0

    def test_efficiency_bounded(self, model, lu_large):
        st_profile = lu_large.stages[0]
        for ty in (1, 8, 80, 400, 2000):
            for tx in (1, 8, 80, 400, 2000):
                eff = model.tile_efficiency(st_profile, ty, tx)
                assert 0.0 < eff <= 1.0

    def test_warp_multiple_preferred(self, model, lu_large):
        st_profile = lu_large.stages[0]
        # Same area: a 32-multiple row length beats a ragged one.
        eff_aligned = model.tile_efficiency(st_profile, 50, 32)
        eff_ragged = model.tile_efficiency(st_profile, 50, 33)
        assert eff_aligned > eff_ragged * 0.95  # aligned never much worse

    @settings(max_examples=30, deadline=None)
    @given(
        ty=st.sampled_from([1, 2, 8, 25, 80, 400, 2000]),
        tx=st.sampled_from([1, 5, 16, 50, 200, 1000]),
        run=st.integers(0, 5),
    )
    def test_property_noise_within_bounds(self, ty, tx, run):
        model = SwingPerformanceModel(noise=0.04)
        profile = get_benchmark("lu", "large").profile
        cfg = {"P0": ty, "P1": tx}
        noiseless = model.kernel_time(profile, cfg) * model.calibration_scale(profile)
        measured = model.measured_time(profile, cfg, run_index=run)
        assert abs(measured - noiseless) / noiseless <= 0.04 + 1e-12


class TestCompileTime:
    def test_positive_and_deterministic(self, model, lu_large):
        cfg = {"P0": 8, "P1": 8}
        t = model.compile_time(lu_large, cfg)
        assert t > 0
        assert t == model.compile_time(lu_large, cfg)

    def test_bigger_tiles_compile_slower(self, model, lu_large):
        small = model.compile_time(lu_large, {"P0": 1, "P1": 1})
        # Compare against the average of several large-tile configs to see the
        # trend through the hash jitter.
        bigs = [
            model.compile_time(lu_large, {"P0": p, "P1": q})
            for p, q in [(2000, 2000), (1000, 2000), (2000, 1000)]
        ]
        assert float(np.mean(bigs)) > small
