"""Tests for schedule feature extraction and schedule pricing."""

import pytest

import repro.te as te
from repro.common.errors import ReproError
from repro.common.timing import VirtualClock
from repro.kernels import problem_size, threemm_tuned
from repro.kernels.extra import gemm_tuned
from repro.swing import (
    ScheduleSwingEvaluator,
    SwingPerformanceModel,
    extract_stage_features,
    price_schedule,
)
from tests.conftest import make_matmul


def _tiled_matmul(ty, tx, n=64, m=64, k=64):
    A, B, C = make_matmul(n, m, k)
    s = te.create_schedule(C.op)
    y, x = s[C].op.axis
    kk = s[C].op.reduce_axis[0]
    yo, yi = s[C].split(y, ty)
    xo, xi = s[C].split(x, tx)
    s[C].reorder(yo, xo, kk, yi, xi)
    return s


class TestExtractStageFeatures:
    def test_tiled_matmul(self):
        s = _tiled_matmul(8, 16)
        feats = extract_stage_features(s.stages[0])
        assert feats.kind == "gemm"
        assert (feats.m, feats.n, feats.k) == (64, 64, 64)
        assert (feats.ty, feats.tx) == (8, 16)

    def test_unscheduled_matmul_full_tiles(self):
        _, _, C = make_matmul(32, 24, 16)
        s = te.create_schedule(C.op)
        feats = extract_stage_features(s.stages[0])
        assert (feats.ty, feats.tx) == (32, 24)

    def test_elementwise_stage(self):
        A = te.placeholder((8, 8), name="A")
        B = te.compute((8, 8), lambda i, j: A[i, j] * 2.0, name="B")
        s = te.create_schedule(B.op)
        feats = extract_stage_features(s.stages[0])
        assert feats.kind == "elementwise"
        assert feats.elements == 64

    def test_3d_reduction_stage(self):
        from repro.kernels.extra import doitgen_tuned

        s, _ = doitgen_tuned(4, 8, 16, {"P0": 2, "P1": 4})
        feats = extract_stage_features(s.stages[0])
        assert feats.kind == "gemm"
        assert feats.m == 8 * 4  # q extent times outer r reps
        assert feats.n == 16
        assert (feats.ty, feats.tx) == (2, 4)


class TestPriceSchedule:
    def test_positive_and_deterministic(self):
        s = _tiled_matmul(8, 16)
        t1 = price_schedule(s)
        t2 = price_schedule(s)
        assert t1 == t2 > 0

    def test_tiles_change_price(self):
        bad = price_schedule(_tiled_matmul(1, 1))
        good = price_schedule(_tiled_matmul(16, 32))
        assert bad > good

    def test_matches_registry_profile_ordering(self):
        # Pricing the 3mm schedule directly must rank configs the same way
        # the hand-written registry profile does.
        size = problem_size("3mm", "large")
        model = SwingPerformanceModel()
        good_params = {p: 40 for p in ("P0", "P1", "P2", "P3", "P4", "P5")}
        bad_params = {p: 1 for p in ("P0", "P1", "P2", "P3", "P4", "P5")}
        s_good, _ = threemm_tuned(size, good_params)
        s_bad, _ = threemm_tuned(size, bad_params)
        assert price_schedule(s_good, model) < price_schedule(s_bad, model)

    def test_multi_stage_sums(self):
        size = problem_size("3mm", "mini")
        s, _ = threemm_tuned(size, {p: 4 for p in ("P0", "P1", "P2", "P3", "P4", "P5")})
        total = price_schedule(s)
        assert total > 0


class TestScheduleSwingEvaluator:
    def _builder(self, params):
        return gemm_tuned(256, 256, 256, params)

    def test_evaluate_and_clock(self):
        ev = ScheduleSwingEvaluator(self._builder, clock=VirtualClock())
        res = ev.evaluate({"P0": 16, "P1": 32})
        assert res.ok
        assert res.mean_cost > 0
        assert ev.clock.now >= res.compile_time + res.mean_cost

    def test_bad_params_reported(self):
        ev = ScheduleSwingEvaluator(self._builder, clock=VirtualClock())
        res = ev.evaluate({"P0": 0, "P1": 4})  # invalid tile factor
        assert not res.ok
        assert "compile error" in res.error

    def test_bo_tunes_custom_kernel_on_simulator(self):
        from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
        from repro.core import AutotuneConfig, BayesianAutotuner

        space = ConfigurationSpace(seed=0)
        space.add_hyperparameters(
            [
                OrdinalHyperparameter("P0", [1, 4, 16, 64, 256]),
                OrdinalHyperparameter("P1", [1, 4, 16, 64, 256]),
            ]
        )
        ev = ScheduleSwingEvaluator(self._builder, clock=VirtualClock())
        bo = BayesianAutotuner(
            space, ev, config=AutotuneConfig(max_evals=15, seed=0)
        )
        result = bo.run()
        worst = ev.evaluate({"P0": 1, "P1": 1}).mean_cost
        assert result.best_runtime < worst

    def test_validation(self):
        with pytest.raises(ReproError):
            ScheduleSwingEvaluator(self._builder, number=0)
