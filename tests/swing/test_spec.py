"""Tests for hardware specs."""

from repro.swing import A100_SPEC, SWING_NODE, A100Spec


class TestA100Spec:
    def test_published_numbers(self):
        assert A100_SPEC.sm_count == 108
        assert A100_SPEC.fp64_flops == 9.7e12
        assert A100_SPEC.hbm_bandwidth == 1.555e12
        assert A100_SPEC.hbm_bytes == 40 * 1024**3

    def test_peak_flops_by_width(self):
        assert A100_SPEC.peak_flops(8) == A100_SPEC.fp64_flops
        assert A100_SPEC.peak_flops(4) == A100_SPEC.fp32_flops

    def test_swing_node_matches_paper(self):
        # Paper §5: 8x A100 per node, 2x AMD EPYC 7742 (64 cores each), 1 TB.
        assert SWING_NODE.gpus_per_node == 8
        assert SWING_NODE.cpu_sockets == 2
        assert SWING_NODE.cpu_cores_per_socket == 64
        assert SWING_NODE.ddr_bytes == 1024**4

    def test_frozen(self):
        import dataclasses

        import pytest

        with pytest.raises(dataclasses.FrozenInstanceError):
            A100Spec().sm_count = 1
