"""Tests for the energy model and energy-metric tuning."""

import pytest

from repro.common.errors import ReproError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import EnergyModel, SwingEvaluator


@pytest.fixture
def profile():
    return get_benchmark("lu", "large").profile


@pytest.fixture
def model():
    return EnergyModel()


class TestEnergyModel:
    def test_power_within_envelope(self, model, profile):
        for cfg in ({"P0": 1, "P1": 1}, {"P0": 80, "P1": 80}, {"P0": 2000, "P1": 2000}):
            p = model.power(profile, cfg)
            assert 55.0 < p <= 400.0

    def test_efficient_tiles_draw_more_power(self, model, profile):
        assert model.power(profile, {"P0": 80, "P1": 80}) > model.power(
            profile, {"P0": 1, "P1": 1}
        )

    def test_energy_optimum_differs_from_runtime_optimum_direction(self, model, profile):
        # Slow tiny tiles: less power but far more time -> much more energy.
        e_bad = model.measured(profile, {"P0": 1, "P1": 1}, metric="energy")
        e_good = model.measured(profile, {"P0": 80, "P1": 80}, metric="energy")
        assert e_bad > e_good

    def test_metric_relationships(self, model, profile):
        cfg = {"P0": 40, "P1": 50}
        rt = model.measured(profile, cfg, metric="runtime")
        en = model.measured(profile, cfg, metric="energy")
        edp = model.measured(profile, cfg, metric="edp")
        assert en == pytest.approx(model.power(profile, cfg) * rt)
        assert edp == pytest.approx(en * rt)

    def test_unknown_metric_rejected(self, model, profile):
        with pytest.raises(ReproError):
            model.measured(profile, {"P0": 1, "P1": 1}, metric="carbon")

    def test_utilization_bounded(self, model, profile):
        for cfg in ({"P0": 1, "P1": 1}, {"P0": 80, "P1": 80}):
            assert 0.0 < model.utilization(profile, cfg) <= 1.0

    def test_bad_power_params_rejected(self):
        with pytest.raises(ReproError):
            EnergyModel(idle_watts=-1.0)


class TestEnergyEvaluator:
    def test_energy_metric_costs(self, profile):
        ev = SwingEvaluator(profile, clock=VirtualClock(), metric="energy")
        res = ev.evaluate({"P0": 80, "P1": 80})
        assert res.ok
        # Joules, not seconds: hundreds of watts x ~1.7 s.
        assert res.mean_cost > 100.0

    def test_clock_still_advances_by_runtime(self, profile):
        ev_rt = SwingEvaluator(profile, clock=VirtualClock(), metric="runtime")
        ev_en = SwingEvaluator(profile, clock=VirtualClock(), metric="energy")
        cfg = {"P0": 80, "P1": 80}
        ev_rt.evaluate(cfg)
        ev_en.evaluate(cfg)
        assert ev_rt.clock.now == pytest.approx(ev_en.clock.now)

    def test_unknown_metric_rejected(self, profile):
        with pytest.raises(ReproError):
            SwingEvaluator(profile, metric="carbon")

    def test_energy_tuning_end_to_end(self, profile):
        from repro.core import AutotuneConfig, BayesianAutotuner
        from repro.kernels import get_benchmark

        bench = get_benchmark("lu", "large")
        ev = SwingEvaluator(bench.profile, clock=VirtualClock(), metric="energy")
        bo = BayesianAutotuner(
            bench.config_space(seed=0), ev,
            config=AutotuneConfig(max_evals=15, seed=0),
        )
        result = bo.run()
        # Energy of the found config beats the pathological corner by a lot.
        worst = EnergyModel().measured(bench.profile, {"P0": 1, "P1": 1}, "energy")
        assert result.best_runtime < worst / 10
