"""Tests for kernel profiles."""

import pytest

from repro.common.errors import SpaceError
from repro.swing import GemmStageProfile, KernelProfile


def _stage(**kw):
    defaults = dict(name="s", m=100, n=100, k=100, param_y="P0", param_x="P1")
    defaults.update(kw)
    return GemmStageProfile(**defaults)


class TestGemmStageProfile:
    def test_flops(self):
        assert _stage().flops == 2.0 * 100**3

    def test_flops_scale(self):
        assert _stage(flops_scale=0.5).flops == 100**3

    def test_tiles_extraction(self):
        assert _stage().tiles({"P0": 8, "P1": 16}) == (8, 16)

    def test_tiles_missing_param(self):
        with pytest.raises(SpaceError):
            _stage().tiles({"P0": 8})

    def test_tiles_nonpositive(self):
        with pytest.raises(SpaceError):
            _stage().tiles({"P0": 0, "P1": 4})

    def test_bad_dims_rejected(self):
        with pytest.raises(SpaceError):
            _stage(m=0)

    def test_bad_scale_rejected(self):
        with pytest.raises(SpaceError):
            _stage(flops_scale=0.0)

    def test_bad_launches_rejected(self):
        with pytest.raises(SpaceError):
            _stage(launches=0)


class TestKernelProfile:
    def test_params_in_stage_order(self):
        p = KernelProfile(
            kernel="x",
            size_name="s",
            stages=(
                _stage(name="a", param_y="P0", param_x="P1"),
                _stage(name="b", param_y="P2", param_x="P3"),
            ),
        )
        assert p.params == ["P0", "P1", "P2", "P3"]

    def test_shared_params_deduped(self):
        p = KernelProfile(
            kernel="x",
            size_name="s",
            stages=(_stage(name="a"), _stage(name="b")),
        )
        assert p.params == ["P0", "P1"]

    def test_empty_stages_rejected(self):
        with pytest.raises(SpaceError):
            KernelProfile(kernel="x", size_name="s", stages=())

    def test_candidates_must_cover_params(self):
        with pytest.raises(SpaceError):
            KernelProfile(
                kernel="x",
                size_name="s",
                stages=(_stage(),),
                param_candidates={"P0": (1, 2)},  # P1 missing
            )

    def test_candidates_lookup(self):
        p = KernelProfile(
            kernel="x",
            size_name="s",
            stages=(_stage(),),
            param_candidates={"P0": (1, 2), "P1": (1, 5)},
        )
        assert p.candidates("P1") == (1, 5)
        with pytest.raises(SpaceError):
            p.candidates("P9")
