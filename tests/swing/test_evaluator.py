"""Tests for the SwingEvaluator (simulated measurement + virtual clock)."""

import pytest

from repro.common.errors import ReproError
from repro.common.timing import VirtualClock
from repro.kernels import get_benchmark
from repro.swing import SwingEvaluator, SwingPerformanceModel


@pytest.fixture
def profile():
    return get_benchmark("lu", "large").profile


class TestEvaluate:
    def test_successful_result(self, profile):
        ev = SwingEvaluator(profile, clock=VirtualClock())
        res = ev.evaluate({"P0": 40, "P1": 50})
        assert res.ok
        assert res.mean_cost > 0
        assert res.compile_time > 0
        assert res.timestamp == ev.clock.now

    def test_clock_advances_by_compile_plus_runs(self, profile):
        clock = VirtualClock()
        ev = SwingEvaluator(profile, clock=clock, number=1, measure_overhead=0.0)
        res = ev.evaluate({"P0": 40, "P1": 50})
        assert clock.now == pytest.approx(res.compile_time + res.costs[0])

    def test_number_multiplies_run_charge(self, profile):
        c1, c3 = VirtualClock(), VirtualClock()
        SwingEvaluator(profile, clock=c1, number=1).evaluate({"P0": 40, "P1": 50})
        SwingEvaluator(profile, clock=c3, number=3).evaluate({"P0": 40, "P1": 50})
        assert c3.now > c1.now + 2.0  # two extra multi-second runs

    def test_compile_parallelism_discounts_charge(self, profile):
        cfg = {"P0": 40, "P1": 50}
        serial = SwingEvaluator(profile, clock=VirtualClock(), compile_parallelism=1)
        r1 = serial.evaluate(cfg)
        parallel = SwingEvaluator(profile, clock=VirtualClock(), compile_parallelism=8)
        r8 = parallel.evaluate(cfg)
        assert r1.compile_time == r8.compile_time  # reported build cost equal
        assert r8.extra["charged_compile"] == pytest.approx(r1.compile_time / 8)

    def test_counts_evaluations(self, profile):
        ev = SwingEvaluator(profile, clock=VirtualClock())
        ev.evaluate({"P0": 8, "P1": 8})
        ev.evaluate({"P0": 4, "P1": 4})
        assert ev.n_evaluations == 2

    def test_repeat_gives_multiple_costs(self, profile):
        ev = SwingEvaluator(profile, clock=VirtualClock(), repeat=3)
        res = ev.evaluate({"P0": 40, "P1": 50})
        assert len(res.costs) == 3

    def test_missing_param_is_failed_measurement(self, profile):
        ev = SwingEvaluator(profile, clock=VirtualClock())
        res = ev.evaluate({"P0": 40})  # P1 missing
        assert not res.ok
        assert "compile error" in res.error
        assert ev.clock.now > 0  # attempt still cost time

    def test_timeout_reported(self, profile):
        # All-1 tiles run for hundreds of virtual seconds.
        ev = SwingEvaluator(profile, clock=VirtualClock(), timeout=10.0)
        res = ev.evaluate({"P0": 1, "P1": 1})
        assert not res.ok
        assert "timeout" in res.error

    def test_fast_config_not_timed_out(self, profile):
        ev = SwingEvaluator(profile, clock=VirtualClock(), timeout=100.0)
        res = ev.evaluate({"P0": 80, "P1": 80})
        assert res.ok

    def test_run_parallelism_divides_clock_charge(self, profile):
        cfg = {"P0": 40, "P1": 50}
        c1, c8 = VirtualClock(), VirtualClock()
        SwingEvaluator(
            profile, clock=c1, number=8, measure_overhead=0.0
        ).evaluate(cfg)
        SwingEvaluator(
            profile, clock=c8, number=8, run_parallelism=8, measure_overhead=0.0
        ).evaluate(cfg)
        assert c8.now < c1.now  # runs spread over the node's 8 GPUs

    def test_validation(self, profile):
        with pytest.raises(ReproError):
            SwingEvaluator(profile, number=0)
        with pytest.raises(ReproError):
            SwingEvaluator(profile, compile_parallelism=0)
        with pytest.raises(ReproError):
            SwingEvaluator(profile, timeout=0.0)
        with pytest.raises(ReproError):
            SwingEvaluator(profile, run_parallelism=0)

    def test_elapsed_tracks_clock(self, profile):
        clock = VirtualClock(100.0)
        ev = SwingEvaluator(profile, clock=clock)
        assert ev.elapsed() == 100.0
