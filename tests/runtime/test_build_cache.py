"""BuildCache unit + property tests: content-keyed hashing must be stable
under dict-ordering permutations, and the LRU/counters must behave."""

from __future__ import annotations

import functools

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import ReproError
from repro.runtime.build_cache import BuildCache, builder_fingerprint, schedule_key

from tests.runtime.parallel_targets import good_builder, slow_builder

config_dicts = st.dictionaries(
    keys=st.text(
        alphabet="PQRSTxyz0123456789_", min_size=1, max_size=8
    ),
    values=st.integers(min_value=0, max_value=2**31 - 1),
    min_size=1,
    max_size=8,
)


class TestScheduleKeyProperties:
    @settings(max_examples=100, deadline=None)
    @given(config=config_dicts, order_seed=st.randoms(use_true_random=False))
    def test_key_stable_under_dict_ordering(self, config, order_seed):
        items = list(config.items())
        order_seed.shuffle(items)
        permuted = dict(items)
        assert permuted == config  # same mapping...
        assert schedule_key(config, builder=good_builder) == schedule_key(
            permuted, builder=good_builder
        )  # ...same key, whatever the insertion order

    @settings(max_examples=100, deadline=None)
    @given(config=config_dicts)
    def test_key_is_deterministic_hex(self, config):
        k1 = schedule_key(config, builder=good_builder, target="llvm")
        k2 = schedule_key(config, builder=good_builder, target="llvm")
        assert k1 == k2
        assert len(k1) == 64 and all(c in "0123456789abcdef" for c in k1)

    @settings(max_examples=60, deadline=None)
    @given(config=config_dicts, delta=st.integers(min_value=1, max_value=100))
    def test_key_changes_with_config(self, config, delta):
        name = next(iter(config))
        changed = dict(config)
        changed[name] = changed[name] + delta
        assert schedule_key(config) != schedule_key(changed)

    def test_key_distinguishes_builder_and_target(self):
        cfg = {"P0": 2}
        assert schedule_key(cfg, builder=good_builder) != schedule_key(
            cfg, builder=slow_builder
        )
        assert schedule_key(cfg, builder=good_builder, target="llvm") != schedule_key(
            cfg, builder=good_builder, target="interp"
        )

    def test_key_accepts_numpy_style_ints(self):
        import numpy as np

        assert schedule_key({"P0": np.int64(2)}) == schedule_key({"P0": 2})


class TestBuilderFingerprint:
    def test_module_function(self):
        fp = builder_fingerprint(good_builder)
        assert "parallel_targets" in fp and "good_builder" in fp

    def test_partial_includes_bound_args(self):
        p32 = functools.partial(good_builder, 32)
        p64 = functools.partial(good_builder, 64)
        assert builder_fingerprint(p32) != builder_fingerprint(p64)
        assert builder_fingerprint(p32) == builder_fingerprint(
            functools.partial(good_builder, 32)
        )

    def test_fingerprint_has_no_memory_address(self):
        class CallableBuilder:
            def __call__(self, params):
                return good_builder(params)

        fp1 = builder_fingerprint(CallableBuilder())
        fp2 = builder_fingerprint(CallableBuilder())
        assert fp1 == fp2  # identity is the class, not the instance


class TestBuildCache:
    def test_miss_then_hit(self):
        cache = BuildCache()
        key = schedule_key({"P0": 2})
        assert cache.get(key) is None
        cache.put(key, "artifact")
        assert cache.get(key) == "artifact"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = BuildCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a
        cache.put("c", 3)  # evicts b (least recently used)
        assert cache.peek("b") is None
        assert cache.peek("a") == 1 and cache.peek("c") == 3
        assert len(cache) == 2

    def test_peek_does_not_count(self):
        cache = BuildCache()
        cache.peek("missing")
        assert cache.hits == 0 and cache.misses == 0

    def test_stats_and_clear(self):
        cache = BuildCache()
        cache.put("k", "v")
        stats = cache.stats()
        assert stats["cache_entries"] == 1.0
        cache.clear()
        assert len(cache) == 0

    def test_invalid_size_rejected(self):
        with pytest.raises(ReproError):
            BuildCache(max_entries=0)

    @settings(max_examples=40, deadline=None)
    @given(
        keys=st.lists(st.text(min_size=1, max_size=4), min_size=1, max_size=30),
        max_entries=st.integers(min_value=1, max_value=8),
    )
    def test_never_exceeds_capacity(self, keys, max_entries):
        cache = BuildCache(max_entries=max_entries)
        for i, k in enumerate(keys):
            cache.put(k, i)
            assert len(cache) <= max_entries
        # The most recently inserted key always survives.
        assert cache.peek(keys[-1]) is not None
