"""Statistics battery for multi-fidelity measurement.

Covers :func:`repro.runtime.fidelity.probe_statistics` against known
distributions, :class:`AdaptiveRepeatPolicy` at the margin boundaries and the
degenerate edges (zero variance, single repeat, failed probes), and the
:class:`MultiFidelityEvaluator` scheduling mechanics (probe → promote top-up,
early termination, counters, attribute forwarding, telemetry events).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.runtime.fidelity import (
    AdaptiveRepeatPolicy,
    FidelityDecision,
    MultiFidelityEvaluator,
    probe_statistics,
)
from repro.runtime.measure import FAILED_COST, Evaluator, MeasureResult
from repro.telemetry import (
    RecordingSink,
    Telemetry,
    TrialPromoted,
    TrialPruned,
    telemetry_session,
)


class TestProbeStatistics:
    def test_hand_computed_values(self):
        mean, std, sem = probe_statistics([2.0, 4.0, 6.0])
        assert mean == pytest.approx(4.0)
        assert std == pytest.approx(2.0)  # unbiased: sqrt(((2)^2+(0)^2+(2)^2)/2)
        assert sem == pytest.approx(2.0 / math.sqrt(3))

    def test_matches_numpy_on_known_distribution(self):
        rng = np.random.default_rng(7)
        samples = rng.normal(loc=3.0, scale=0.5, size=50).tolist()
        mean, std, sem = probe_statistics(samples)
        assert mean == pytest.approx(np.mean(samples))
        assert std == pytest.approx(np.std(samples, ddof=1))
        assert sem == pytest.approx(np.std(samples, ddof=1) / math.sqrt(50))

    def test_large_sample_converges_to_population(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(loc=10.0, scale=2.0, size=20_000).tolist()
        mean, std, sem = probe_statistics(samples)
        assert mean == pytest.approx(10.0, abs=0.1)
        assert std == pytest.approx(2.0, abs=0.1)
        assert sem == pytest.approx(std / math.sqrt(20_000))

    def test_single_repeat_has_no_variance_information(self):
        assert probe_statistics([1.5]) == (1.5, 0.0, 0.0)

    def test_zero_variance_sample(self):
        mean, std, sem = probe_statistics([0.25] * 4)
        assert (mean, std, sem) == (0.25, 0.0, 0.0)

    def test_empty_sample_rejected(self):
        with pytest.raises(ReproError, match="at least one"):
            probe_statistics([])


class TestPolicyValidation:
    def test_bad_probe_repeats(self):
        with pytest.raises(ReproError, match="probe_repeats"):
            AdaptiveRepeatPolicy(probe_repeats=0)

    def test_bad_margin(self):
        with pytest.raises(ReproError, match="promote_margin"):
            AdaptiveRepeatPolicy(promote_margin=-0.01)

    def test_bad_z(self):
        with pytest.raises(ReproError, match="z"):
            AdaptiveRepeatPolicy(z=-1.0)


class TestPolicyDecisions:
    def test_no_incumbent_always_promotes(self):
        policy = AdaptiveRepeatPolicy(promote_margin=0.0, z=0.0)
        d = policy.decide([100.0, 200.0], None)
        assert d.promote and "no incumbent" in d.reason
        assert math.isinf(d.limit)

    def test_infinite_incumbent_treated_as_absent(self):
        d = AdaptiveRepeatPolicy().decide([5.0], math.inf)
        assert d.promote

    def test_margin_boundary_inclusive(self):
        # limit = 2.0 * (1 + 0.5) = 3.0; a zero-variance probe exactly at the
        # limit is promoted (<=), just above it is terminated.
        policy = AdaptiveRepeatPolicy(promote_margin=0.5, z=1.0)
        at = policy.decide([3.0, 3.0], 2.0)
        assert at.promote
        assert at.lower_bound == pytest.approx(3.0)
        assert at.limit == pytest.approx(3.0)
        above = policy.decide([3.5, 3.5], 2.0)
        assert not above.promote
        assert "exceeds limit" in above.reason

    def test_z_widens_the_benefit_of_the_doubt(self):
        # probe mean 3.0 vs incumbent 2.0 with no margin: the raw mean says
        # terminate, but a 2-sem bound dips below the incumbent and promotes.
        probe = [2.0, 4.0]
        strict = AdaptiveRepeatPolicy(promote_margin=0.0, z=0.0).decide(probe, 2.0)
        assert not strict.promote
        generous = AdaptiveRepeatPolicy(promote_margin=0.0, z=2.0).decide(probe, 2.0)
        assert generous.promote
        sem = np.std(probe, ddof=1) / math.sqrt(2)
        assert generous.lower_bound == pytest.approx(3.0 - 2.0 * sem)

    def test_zero_variance_probe_decided_on_mean_alone(self):
        # sem is 0, so z cannot rescue a slow zero-variance probe.
        policy = AdaptiveRepeatPolicy(promote_margin=0.1, z=100.0)
        assert not policy.decide([2.0, 2.0], 1.0).promote
        assert policy.decide([1.05, 1.05], 1.0).promote

    def test_single_repeat_probe_uses_raw_mean(self):
        policy = AdaptiveRepeatPolicy(probe_repeats=1, promote_margin=0.2, z=3.0)
        d = policy.decide([1.3], 1.0)
        assert not d.promote
        assert d.lower_bound == pytest.approx(1.3)  # sem 0 despite z=3

    def test_failed_probe_never_promoted(self):
        d = AdaptiveRepeatPolicy().decide([], 1.0)
        assert not d.promote
        assert "never promoted" in d.reason
        # ... even with no incumbent established yet:
        assert not AdaptiveRepeatPolicy().decide([], None).promote

    def test_failed_cost_sentinel_never_promoted(self):
        # A FAILED_COST sample (1e10) against any finite incumbent is hopeless.
        d = AdaptiveRepeatPolicy(promote_margin=1.0, z=2.0).decide(
            [FAILED_COST, FAILED_COST], 1.0
        )
        assert not d.promote

    def test_decision_is_frozen(self):
        d = AdaptiveRepeatPolicy().decide([1.0], None)
        assert isinstance(d, FidelityDecision)
        with pytest.raises(AttributeError):
            d.promote = False


class ScriptedEvaluator(Evaluator):
    """Deterministic fake: each config draws costs from its own stream.

    Repeats consume the stream sequentially, so a promotion's top-up samples
    are distinguishable from the probe samples — concatenation order is
    observable. Configs listed in ``fail`` always error out.
    """

    def __init__(self, streams, fail=(), repeat=4):
        self.streams = {k: list(v) for k, v in streams.items()}
        self.fail = set(fail)
        self.repeat = repeat
        self.number = 1
        self.calls = []  # (config key, repeats requested)
        self._pos = {}
        self._t = 0.0

    def evaluate(self, params):
        key = params["P0"]
        n = int(self.repeat)
        self.calls.append((key, n))
        self._t += 0.1  # compile
        if key in self.fail:
            return MeasureResult(
                config=dict(params),
                costs=(),
                compile_time=0.1,
                timestamp=self._t,
                error="injected failure",
            )
        pos = self._pos.get(key, 0)
        sample = tuple(self.streams[key][pos : pos + n])
        self._pos[key] = pos + n
        self._t += sum(sample)
        return MeasureResult(
            config=dict(params), costs=sample, compile_time=0.1, timestamp=self._t
        )

    def elapsed(self):
        return self._t


class TestMultiFidelityEvaluator:
    def test_requires_repeat_capable_base(self):
        class NoRepeat(Evaluator):
            pass

        with pytest.raises(ReproError, match="repeat"):
            MultiFidelityEvaluator(NoRepeat())

    def test_rejects_bad_jobs(self):
        base = ScriptedEvaluator({1: [1.0] * 8})
        with pytest.raises(ReproError, match="jobs"):
            MultiFidelityEvaluator(base, jobs=0)

    def test_full_budget_at_or_below_probe_is_a_direct_measurement(self):
        base = ScriptedEvaluator({1: [1.0, 1.0]}, repeat=2)
        mfe = MultiFidelityEvaluator(base, AdaptiveRepeatPolicy(probe_repeats=2))
        result = mfe.evaluate({"P0": 1})
        assert result.fidelity == "full"
        assert base.calls == [(1, 2)]
        assert mfe.fidelity_stats()["full_direct"] == 1.0

    def test_first_trial_promotes_and_sets_incumbent(self):
        base = ScriptedEvaluator({1: [1.0, 1.2, 0.9, 1.1]}, repeat=4)
        mfe = MultiFidelityEvaluator(base, AdaptiveRepeatPolicy(probe_repeats=2))
        result = mfe.evaluate({"P0": 1})
        assert result.fidelity == "promoted"
        # probe of 2, then a top-up of exactly full - probe = 2 repeats
        assert base.calls == [(1, 2), (1, 2)]
        # costs concatenate probe + top-up in stream order, nothing re-measured
        assert result.costs == (1.0, 1.2, 0.9, 1.1)
        assert result.extra["fidelity_repeats"] == 4.0
        assert mfe._incumbent == pytest.approx(result.mean_cost)

    def test_hopeless_probe_is_terminated_early(self):
        base = ScriptedEvaluator(
            {1: [1.0, 1.0, 1.0, 1.0], 2: [9.0, 9.0, 9.0, 9.0]}, repeat=4
        )
        mfe = MultiFidelityEvaluator(
            base, AdaptiveRepeatPolicy(probe_repeats=2, promote_margin=0.15)
        )
        mfe.evaluate({"P0": 1})  # establishes incumbent 1.0
        loser = mfe.evaluate({"P0": 2})
        assert loser.fidelity == "probe"
        assert loser.low_fidelity
        assert len(loser.costs) == 2  # never topped up
        assert base.calls == [(1, 2), (1, 2), (2, 2)]
        stats = mfe.fidelity_stats()
        assert stats == {
            "probed": 2.0,
            "promoted": 1.0,
            "early_stopped": 1.0,
            "full_direct": 0.0,
        }

    def test_terminated_probe_does_not_move_the_incumbent(self):
        base = ScriptedEvaluator(
            {1: [2.0] * 4, 2: [9.0] * 4, 3: [1.9] * 4}, repeat=4
        )
        mfe = MultiFidelityEvaluator(
            base, AdaptiveRepeatPolicy(probe_repeats=2, promote_margin=0.1)
        )
        mfe.evaluate({"P0": 1})
        mfe.evaluate({"P0": 2})  # terminated
        assert mfe._incumbent == pytest.approx(2.0)
        promoted = mfe.evaluate({"P0": 3})  # still judged against 2.0
        assert promoted.fidelity == "promoted"
        assert mfe._incumbent == pytest.approx(1.9)

    def test_failed_probe_never_reaches_full_fidelity(self):
        base = ScriptedEvaluator({1: [1.0] * 4, 2: []}, fail={2}, repeat=4)
        mfe = MultiFidelityEvaluator(base, AdaptiveRepeatPolicy(probe_repeats=2))
        mfe.evaluate({"P0": 1})
        failed = mfe.evaluate({"P0": 2})
        assert not failed.ok
        assert failed.mean_cost == FAILED_COST
        assert failed.fidelity == "probe"
        # exactly one (probe) call for the failing config — no top-up
        assert [c for c in base.calls if c[0] == 2] == [(2, 2)]
        assert mfe.fidelity_stats()["early_stopped"] == 1.0

    def test_attribute_forwarding_round_trips(self):
        base = ScriptedEvaluator({1: [1.0] * 8}, repeat=4)
        mfe = MultiFidelityEvaluator(base)
        assert mfe.repeat == 4  # read-through
        mfe.repeat = 6  # write-through (Measurer.configure_evaluator path)
        assert base.repeat == 6
        mfe.number = 3
        assert base.number == 3
        assert mfe.elapsed() == base.elapsed()

    def test_probe_repeat_restored_after_each_phase(self):
        base = ScriptedEvaluator({1: [1.0] * 8, 2: [50.0] * 8}, repeat=4)
        mfe = MultiFidelityEvaluator(base, AdaptiveRepeatPolicy(probe_repeats=2))
        mfe.evaluate({"P0": 1})
        assert base.repeat == 4  # promotion path restores the full budget
        mfe.evaluate({"P0": 2})
        assert base.repeat == 4  # termination path too

    def test_telemetry_promoted_and_pruned_events(self):
        base = ScriptedEvaluator(
            {1: [1.0, 1.2, 0.9, 1.1], 2: [9.0, 9.0]}, repeat=4
        )
        mfe = MultiFidelityEvaluator(base, AdaptiveRepeatPolicy(probe_repeats=2))
        sink = RecordingSink()
        tel = Telemetry(sinks=[sink])
        with telemetry_session(tel):
            mfe.evaluate({"P0": 1})
            mfe.evaluate({"P0": 2})
        tel.close()
        promoted = [e for e in sink.events if isinstance(e, TrialPromoted)]
        pruned = [e for e in sink.events if isinstance(e, TrialPruned)]
        assert len(promoted) == 1
        assert promoted[0].probe_repeats == 2
        assert promoted[0].total_repeats == 4
        assert promoted[0].probe_mean == pytest.approx(1.1)
        assert len(pruned) == 1
        assert pruned[0].source == "fidelity"
        assert pruned[0].estimate == pytest.approx(9.0)

    def test_batch_probe_then_promote_waves(self):
        base = ScriptedEvaluator(
            {1: [1.0] * 4, 2: [9.0] * 4, 3: [1.05] * 4}, repeat=4
        )
        mfe = MultiFidelityEvaluator(
            base, AdaptiveRepeatPolicy(probe_repeats=2, promote_margin=0.15)
        )
        results = mfe.evaluate_batch([{"P0": 1}, {"P0": 2}, {"P0": 3}])
        assert [r.fidelity for r in results] == ["promoted", "probe", "promoted"]
        assert [len(r.costs) for r in results] == [4, 2, 4]
