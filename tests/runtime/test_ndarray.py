"""Tests for the NDArray wrapper."""

import numpy as np
import pytest

from repro.common.errors import ExecutionError
from repro.runtime import NDArray, array, empty, zeros


class TestNDArray:
    def test_array_roundtrip(self):
        nd = array([[1.0, 2.0], [3.0, 4.0]], dtype="float32")
        assert nd.shape == (2, 2)
        assert nd.dtype == "float32"
        np.testing.assert_array_equal(nd.numpy(), [[1, 2], [3, 4]])

    def test_numpy_returns_copy(self):
        nd = zeros((3,))
        out = nd.numpy()
        out[0] = 99
        assert nd.numpy()[0] == 0

    def test_view_aliases(self):
        nd = zeros((3,))
        nd.view()[0] = 7
        assert nd.numpy()[0] == 7

    def test_asnumpy_alias(self):
        nd = array([1.0, 2.0])
        np.testing.assert_array_equal(nd.asnumpy(), nd.numpy())

    def test_copyfrom(self):
        nd = zeros((2, 2))
        nd.copyfrom(np.ones((2, 2), dtype="float32"))
        assert nd.numpy().sum() == 4

    def test_copyfrom_ndarray(self):
        a = array(np.full((2,), 5.0))
        b = zeros((2,), dtype="float64")
        b.copyfrom(a)
        assert b.numpy().tolist() == [5.0, 5.0]

    def test_copyfrom_shape_mismatch(self):
        with pytest.raises(ExecutionError):
            zeros((2, 2)).copyfrom(np.zeros((3, 3)))

    def test_empty_shape_dtype(self):
        nd = empty((4, 5), dtype="float64")
        assert nd.shape == (4, 5) and nd.dtype == "float64"

    def test_contiguous_enforced(self):
        base = np.zeros((4, 4))[::2, ::2]
        nd = NDArray(base)
        assert nd.view().flags["C_CONTIGUOUS"]
