"""Tests for the shared measurement abstractions and LocalEvaluator."""

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.kernels.extra import gemm_tuned
from repro.runtime.measure import FAILED_COST, LocalEvaluator, MeasureResult


def _builder(params):
    return gemm_tuned(8, 8, 8, params)


class TestMeasureResult:
    def test_ok_mean(self):
        r = MeasureResult({}, costs=(1.0, 3.0), compile_time=0.1, timestamp=1.0)
        assert r.ok
        assert r.mean_cost == 2.0
        assert r.min_cost == 1.0

    def test_error_gives_failed_cost(self):
        r = MeasureResult({}, costs=(), compile_time=0.1, timestamp=1.0, error="boom")
        assert not r.ok
        assert r.mean_cost == FAILED_COST


class TestLocalEvaluator:
    def test_successful_evaluation(self):
        ev = LocalEvaluator(_builder, seed=0)
        res = ev.evaluate({"P0": 4, "P1": 4})
        assert res.ok
        assert res.mean_cost > 0
        assert res.compile_time > 0
        assert res.timestamp > 0

    def test_costs_length_matches_repeat(self):
        ev = LocalEvaluator(_builder, repeat=3, seed=0)
        res = ev.evaluate({"P0": 2, "P1": 2})
        assert len(res.costs) == 3

    def test_compile_error_captured(self):
        def bad_builder(params):
            raise ReproError("bad tile")

        ev = LocalEvaluator(bad_builder)
        res = ev.evaluate({"P0": 1})
        assert not res.ok
        assert "compile error" in res.error

    def test_validate_hook(self):
        ev = LocalEvaluator(_builder, validate=lambda bufs: "validation failed")
        res = ev.evaluate({"P0": 2, "P1": 2})
        assert res.error == "validation failed"

    def test_elapsed_monotone(self):
        ev = LocalEvaluator(_builder)
        a = ev.elapsed()
        ev.evaluate({"P0": 2, "P1": 2})
        assert ev.elapsed() > a

    def test_invalid_counts_rejected(self):
        with pytest.raises(ReproError):
            LocalEvaluator(_builder, number=0)

    def test_config_coerced_to_int(self):
        ev = LocalEvaluator(_builder, seed=0)
        res = ev.evaluate({"P0": np.int64(4), "P1": np.int64(2)})
        assert res.ok
        assert isinstance(res.config["P0"], int)

    def test_backend_pin_recorded_in_result(self):
        ev = LocalEvaluator(_builder, seed=0, backend="interp")
        res = ev.evaluate({"P0": 2, "P1": 2})
        assert res.ok
        assert res.backend == "interp"

    def test_default_backend_is_tensor_tier(self):
        res = LocalEvaluator(_builder, seed=0).evaluate({"P0": 2, "P1": 2})
        assert res.backend == "tensor"

    def test_native_pin_measures_native_when_toolchain_exists(self):
        from repro.tir.codegen_c import NativeToolchainError, find_toolchain

        try:
            find_toolchain()
        except NativeToolchainError:
            pytest.skip("no C toolchain")
        res = LocalEvaluator(_builder, seed=0, backend="native").evaluate(
            {"P0": 2, "P1": 2}
        )
        assert res.ok
        assert res.backend == "native"
