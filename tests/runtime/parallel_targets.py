"""Module-level schedule builders for ParallelEvaluator tests.

Worker processes pickle the builder by reference, so every builder (and
validator) used in tests must live at module level in an importable module —
closures and lambdas would break under the spawn start method. The fault
injectors simulate the real failure modes a measurement fleet sees: compile
errors, kernel exceptions, hung builds, hard worker crashes, and transient
crashes that succeed on retry.
"""

from __future__ import annotations

import os
import signal
import time

import numpy as np

import repro.te as te
from repro.common.errors import ReproError


def _matmul_graph(n: int = 12, m: int = 10, k: int = 8):
    A = te.placeholder((n, k), name="A", dtype="float32")
    B = te.placeholder((k, m), name="B", dtype="float32")
    kk = te.reduce_axis((0, k), name="k")
    C = te.compute((n, m), lambda i, j: te.sum(A[i, kk] * B[kk, j], axis=kk), name="C")
    return A, B, C


def good_builder(params):
    """A small tiled matmul; P0 tiles rows (any divisor of 12 works)."""
    A, B, C = _matmul_graph()
    s = te.create_schedule(C.op)
    p0 = int(params.get("P0", 1))
    if p0 > 1:
        i = s[C].op.axis[0]
        s[C].split(i, factor=p0)
    return s, [A, B, C]


def compile_error_builder(params):
    """Raises ReproError during build (a rejected configuration)."""
    raise ReproError(f"unsatisfiable configuration {dict(params)}")


def plain_exception_builder(params):
    """Raises a plain Exception — the escape that used to kill LocalEvaluator."""
    raise ValueError(f"kernel bug for {dict(params)}")


def crash_builder(params):
    """Kills the worker process outright (simulated segfault)."""
    os._exit(17)


def hang_builder(params):
    """Hangs for a long time; interruptible by the worker's SIGALRM watchdog."""
    time.sleep(600)
    return good_builder(params)


def hard_hang_builder(params):
    """Blocks SIGALRM then hangs: only the parent's grace-kill can stop it."""
    signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGALRM})
    time.sleep(600)
    return good_builder(params)


def faulty_20pct_builder(params):
    """Fault-injection mix: ~20% of configurations crash or hang.

    Deterministic in the configuration: P0 % 10 == 4 crashes the worker,
    P0 % 10 == 9 hangs (watchdog-interruptible); everything else builds the
    small matmul.
    """
    p0 = int(params.get("P0", 0))
    if p0 % 10 == 4:
        os._exit(17)
    if p0 % 10 == 9:
        time.sleep(600)
    return good_builder({"P0": 1})


def logged_crash_builder(params):
    """Appends one line per attempt to $REPRO_ATTEMPT_LOG, then crashes.

    Lets tests count exactly how many attempts a crashing configuration got
    (bounded-retry verification).
    """
    log = os.environ.get("REPRO_ATTEMPT_LOG")
    if log:
        with open(log, "a") as fh:
            fh.write(f"{dict(params)}\n")
            fh.flush()
    os._exit(17)


def transient_crash_builder(params):
    """Crashes on the first attempt only: a retry finds the marker file and
    succeeds. Marker directory comes from $REPRO_ATTEMPT_LOG's directory."""
    log = os.environ.get("REPRO_ATTEMPT_LOG")
    marker = log + ".once" if log else None
    if marker and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted\n")
        os._exit(17)
    return good_builder(params)


def slow_builder(params):
    """Adds a fixed wall-clock cost per measurement (speedup benchmarks)."""
    time.sleep(0.05)
    return good_builder(params)


def bad_result_validator(buffers) -> str | None:
    """A validator that always rejects the output."""
    return "validation failed: output rejected"


def crashing_validator(buffers) -> str | None:
    """A validator that raises a plain Exception."""
    raise RuntimeError("validator exploded")


def check_matmul_validator(buffers) -> str | None:
    """Real validation: the output buffer must equal A @ B."""
    a, b, c = buffers
    if np.allclose(c, a @ b, rtol=1e-4, atol=1e-6):
        return None
    return "validation failed: wrong matmul result"
