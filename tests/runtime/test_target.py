"""Tests for Target parsing."""

import pytest

from repro.common.errors import ReproError
from repro.runtime import Target


class TestTarget:
    def test_llvm(self):
        assert Target("llvm").kind == "llvm"

    def test_cpu_alias(self):
        assert Target("cpu").kind == "llvm"

    def test_cuda_is_swing(self):
        assert Target("cuda").kind == "swing"
        assert Target("cuda").is_simulated

    def test_case_insensitive(self):
        assert Target("LLVM").kind == "llvm"

    def test_copy_constructor(self):
        t = Target(Target("interp"))
        assert t.kind == "interp"

    def test_equality_and_hash(self):
        assert Target("cpu") == Target("llvm")
        assert hash(Target("cpu")) == hash(Target("llvm"))

    def test_unknown_rejected(self):
        with pytest.raises(ReproError):
            Target("vulkan")
