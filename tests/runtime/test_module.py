"""Tests for build() and Module execution."""

import numpy as np
import pytest

import repro.te as te
from repro.common.errors import ExecutionError, ReproError
from repro.runtime import NDArray, array, build, zeros
from tests.conftest import make_matmul


@pytest.fixture
def built(matmul):
    A, B, C = matmul
    return build(te.create_schedule(C.op), [A, B, C])


class TestBuild:
    def test_tensor_backend_default(self, built):
        assert built.backend == "tensor"

    def test_backend_ladder_pins_start_tier(self, matmul):
        A, B, C = matmul
        mod = build(te.create_schedule(C.op), [A, B, C], backend="codegen")
        assert mod.backend == "codegen"
        mod = build(te.create_schedule(C.op), [A, B, C], backend="interp")
        assert mod.backend == "interp"

    def test_backend_env_override(self, matmul, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "codegen")
        A, B, C = matmul
        mod = build(te.create_schedule(C.op), [A, B, C])
        assert mod.backend == "codegen"

    def test_unknown_backend_rejected(self, matmul):
        A, B, C = matmul
        with pytest.raises(ReproError):
            build(te.create_schedule(C.op), [A, B, C], backend="cuda")

    def test_interp_target(self, matmul):
        A, B, C = matmul
        mod = build(te.create_schedule(C.op), [A, B, C], target="interp")
        assert mod.backend == "interp"

    def test_swing_target_rejected(self, matmul):
        A, B, C = matmul
        with pytest.raises(ReproError):
            build(te.create_schedule(C.op), [A, B, C], target="swing")

    def test_name_propagates(self, matmul):
        A, B, C = matmul
        mod = build(te.create_schedule(C.op), [A, B, C], name="mm")
        assert mod.name == "mm"


class TestModuleCall:
    def test_accepts_ndarray_and_numpy(self, built, rng):
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c1 = zeros((12, 10))
        built(array(a), array(b), c1)
        c2 = np.zeros((12, 10), dtype="float32")
        built(a, b, c2)
        np.testing.assert_allclose(c1.numpy(), c2, rtol=1e-6)

    def test_wrong_arg_count(self, built):
        with pytest.raises(ExecutionError):
            built(np.zeros((12, 8), dtype="float32"))

    def test_wrong_shape(self, built):
        with pytest.raises(ExecutionError):
            built(
                np.zeros((1, 1), dtype="float32"),
                np.zeros((8, 10), dtype="float32"),
                np.zeros((12, 10), dtype="float32"),
            )

    def test_wrong_dtype(self, built):
        with pytest.raises(ExecutionError):
            built(
                np.zeros((12, 8), dtype="int32"),
                np.zeros((8, 10), dtype="float32"),
                np.zeros((12, 10), dtype="float32"),
            )


class TestTimeEvaluator:
    def test_mean_and_results(self, built, rng):
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c = np.zeros((12, 10), dtype="float32")
        timer = built.time_evaluator(number=2, repeat=3)
        res = timer(a, b, c)
        assert len(res.results) == 3
        assert res.mean >= res.min > 0

    def test_invalid_counts_rejected(self, built):
        with pytest.raises(ReproError):
            built.time_evaluator(number=0)
