"""Native artifact caching: keyed by (source content hash, toolchain version).

Two layers are under test: the in-memory
:class:`~repro.runtime.build_cache.BuildCache` of loaded entry points (with
hit/miss accounting and CacheHit/CacheMiss telemetry), and the
content-addressed ``.so`` scratch directory that survives in-memory eviction
— recompiling identical source under the same toolchain reuses the artifact
on disk instead of invoking the compiler again.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

import repro.te as te
from repro.telemetry import RecordingSink, Telemetry, telemetry_session
from repro.tir import lower, simplify_func
from repro.tir.codegen_c import (
    NativeToolchainError,
    Toolchain,
    build_callable_native,
    codegen_c,
    find_toolchain,
    native_cache,
    native_key,
    reset_native_runtime,
    source_key,
)
from tests.conftest import make_matmul

try:
    find_toolchain()
    HAS_TOOLCHAIN = True
except NativeToolchainError:  # pragma: no cover - CI images ship gcc
    HAS_TOOLCHAIN = False

needs_cc = pytest.mark.skipif(not HAS_TOOLCHAIN, reason="no C toolchain")


@pytest.fixture
def clean_native_state():
    reset_native_runtime()
    try:
        yield
    finally:
        reset_native_runtime()


def _matmul_func(n: int = 12):
    A, B, C = make_matmul(n=n)
    s = te.create_schedule(C.op)
    return simplify_func(lower(s, [A, B, C]))


class TestNativeKey:
    def test_same_source_same_toolchain_same_key(self):
        tc = Toolchain("/usr/bin/cc", "cc (Debian) 12.2.0")
        assert native_key("int x;", tc) == native_key("int x;", tc)

    def test_key_varies_with_source(self):
        tc = Toolchain("/usr/bin/cc", "cc (Debian) 12.2.0")
        assert native_key("int x;", tc) != native_key("int y;", tc)

    def test_key_varies_with_toolchain_version(self):
        old = Toolchain("/usr/bin/cc", "cc (Debian) 12.2.0")
        new = Toolchain("/usr/bin/cc", "cc (Debian) 13.1.0")
        assert native_key("int x;", old) != native_key("int x;", new)

    def test_key_varies_with_toolchain_path(self):
        a = Toolchain("/usr/bin/gcc", "gcc 12.2.0")
        b = Toolchain("/usr/bin/clang", "gcc 12.2.0")
        assert native_key("int x;", a) != native_key("int x;", b)

    def test_key_is_not_the_bare_source_hash(self):
        # The toolchain fingerprint must participate, not just the source.
        tc = Toolchain("/usr/bin/cc", "cc 12")
        assert native_key("int x;", tc) != source_key("int x;")


@needs_cc
class TestNativeBuildCache:
    def test_second_build_is_a_cache_hit(self, clean_native_state):
        func = _matmul_func()
        cache = native_cache()
        assert (cache.hits, cache.misses) == (0, 0)
        first = build_callable_native(func)
        assert (cache.hits, cache.misses) == (0, 1)
        second = build_callable_native(func)
        assert (cache.hits, cache.misses) == (1, 1)
        assert second is first  # the loaded entry itself is reused

    def test_identical_lowerings_share_one_artifact(self, clean_native_state):
        # Two independently lowered copies of the same schedule emit
        # identical source, so the second build never reaches the compiler.
        e1 = build_callable_native(_matmul_func())
        e2 = build_callable_native(_matmul_func())
        assert e1.__native_key__ == e2.__native_key__
        assert native_cache().hits == 1

    def test_different_funcs_get_different_keys(self, clean_native_state):
        e1 = build_callable_native(_matmul_func(n=12))
        e2 = build_callable_native(_matmul_func(n=13))
        assert e1.__native_key__ != e2.__native_key__
        assert native_cache().misses == 2

    def test_cache_emits_hit_miss_telemetry(self, clean_native_state):
        func = _matmul_func()
        sink = RecordingSink()
        with telemetry_session(Telemetry([sink])):
            build_callable_native(func)
            build_callable_native(func)
        kinds = sink.kinds()
        assert kinds.count("cache_miss") == 1
        assert kinds.count("cache_hit") == 1

    def test_entry_key_matches_native_key(self, clean_native_state):
        func = _matmul_func()
        entry = build_callable_native(func)
        assert entry.__native_key__ == native_key(
            entry.__source__, find_toolchain()
        )
        # The emitted source the entry carries is exactly codegen_c's output.
        assert entry.__source__ == codegen_c(func)


@needs_cc
class TestOnDiskArtifactReuse:
    def test_so_survives_in_memory_reset(
        self, clean_native_state, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        entry = build_callable_native(_matmul_func())
        so = entry.__so_path__
        assert os.path.exists(so)
        stamp = os.stat(so).st_mtime_ns
        # Drop the in-memory entry cache; the scratch dir is re-resolved to
        # the same REPRO_NATIVE_DIR, so the .so is reused, not recompiled.
        reset_native_runtime()
        entry2 = build_callable_native(_matmul_func())
        assert entry2.__so_path__ == so
        assert os.stat(so).st_mtime_ns == stamp
        assert native_cache().misses == 1  # fresh cache: miss, then disk hit

    def test_reloaded_artifact_still_computes(
        self, clean_native_state, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        build_callable_native(_matmul_func())
        reset_native_runtime()
        entry = build_callable_native(_matmul_func())
        rng = np.random.default_rng(3)
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c = np.zeros((12, 10), dtype="float32")
        entry(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-6)
