"""ParallelEvaluator failure-path battery: crash, timeout, compile error,
plain exceptions, bounded retries, cache behaviour, ordering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.common.errors import ReproError
from repro.runtime import BuildCache, ParallelEvaluator
from repro.runtime.measure import FAILED_COST
from repro.runtime.parallel import evaluate_batch

from tests.runtime.parallel_targets import (
    check_matmul_validator,
    compile_error_builder,
    crash_builder,
    crashing_validator,
    good_builder,
    hang_builder,
    hard_hang_builder,
    logged_crash_builder,
    plain_exception_builder,
    transient_crash_builder,
)


@pytest.fixture
def evaluator():
    made: list[ParallelEvaluator] = []

    def make(builder, **kwargs) -> ParallelEvaluator:
        kwargs.setdefault("jobs", 2)
        ev = ParallelEvaluator(builder, **kwargs)
        made.append(ev)
        return ev

    yield make
    for ev in made:
        ev.close()


class TestHappyPath:
    def test_single_evaluate(self, evaluator):
        ev = evaluator(good_builder, jobs=1)
        res = ev.evaluate({"P0": 2})
        assert res.ok
        assert res.costs and res.mean_cost > 0
        assert res.config == {"P0": 2}
        assert res.extra["cache_hit"] == 0.0

    def test_batch_preserves_order(self, evaluator):
        ev = evaluator(good_builder, jobs=2)
        configs = [{"P0": p} for p in (1, 2, 3, 4, 6)]
        results = ev.evaluate_batch(configs)
        assert [r.config for r in results] == configs
        assert all(r.ok for r in results)

    def test_validator_runs_in_worker(self, evaluator):
        ev = evaluator(good_builder, jobs=1, validate=check_matmul_validator)
        assert ev.evaluate({"P0": 3}).ok

    def test_constructor_validation(self):
        with pytest.raises(ReproError):
            ParallelEvaluator(good_builder, jobs=0)
        with pytest.raises(ReproError):
            ParallelEvaluator(good_builder, timeout=0)
        with pytest.raises(ReproError):
            ParallelEvaluator(good_builder, max_retries=-1)
        with pytest.raises(ReproError):
            ParallelEvaluator(good_builder, number=0)


class TestFaultIsolation:
    def test_compile_error_is_failed_result(self, evaluator):
        ev = evaluator(compile_error_builder, jobs=1)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert res.mean_cost == FAILED_COST
        assert "compile error" in res.error

    def test_plain_exception_is_failed_result(self, evaluator):
        ev = evaluator(plain_exception_builder, jobs=1)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert res.mean_cost == FAILED_COST
        assert "ValueError" in res.error

    def test_worker_crash_is_failed_result(self, evaluator):
        ev = evaluator(crash_builder, jobs=1, max_retries=1, retry_backoff=0.0)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert res.mean_cost == FAILED_COST
        assert "crash" in res.error
        assert ev.n_crashes >= 1

    def test_crash_does_not_poison_subsequent_batches(self, evaluator):
        ev = evaluator(crash_builder, jobs=2, max_retries=0, retry_backoff=0.0)
        first = ev.evaluate_batch([{"P0": 1}, {"P0": 2}])
        assert all(not r.ok for r in first)
        ev.builder = good_builder  # pool was rebuilt; engine still works
        res = ev.evaluate({"P0": 2})
        assert res.ok

    def test_crashing_validator_is_failed_result(self, evaluator):
        ev = evaluator(good_builder, jobs=1, validate=crashing_validator)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert "RuntimeError" in res.error

    def test_watchdog_timeout_is_failed_result(self, evaluator):
        ev = evaluator(hang_builder, jobs=1, timeout=0.5, parent_grace=10.0)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert res.mean_cost == FAILED_COST
        assert "timeout" in res.error
        assert ev.n_timeouts == 1  # watchdog timeouts count, not just hard kills

    @pytest.mark.slow
    def test_hard_hang_killed_by_parent(self, evaluator):
        ev = evaluator(hard_hang_builder, jobs=1, timeout=0.3, parent_grace=0.7)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert "timeout" in res.error
        assert ev.n_timeouts == 1
        ev.builder = good_builder  # engine recovered from the kill
        assert ev.evaluate({"P0": 2}).ok


class TestBoundedRetries:
    def test_attempts_are_bounded(self, evaluator, tmp_path, monkeypatch):
        log = tmp_path / "attempts.log"
        monkeypatch.setenv("REPRO_ATTEMPT_LOG", str(log))
        ev = evaluator(
            logged_crash_builder, jobs=1, max_retries=2, retry_backoff=0.0
        )
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        attempts = log.read_text().strip().splitlines()
        assert len(attempts) == 3  # 1 initial + max_retries
        assert res.extra["retries"] == 2.0

    def test_zero_retries_single_attempt(self, evaluator, tmp_path, monkeypatch):
        log = tmp_path / "attempts.log"
        monkeypatch.setenv("REPRO_ATTEMPT_LOG", str(log))
        ev = evaluator(
            logged_crash_builder, jobs=1, max_retries=0, retry_backoff=0.0
        )
        assert not ev.evaluate({"P0": 2}).ok
        assert len(log.read_text().strip().splitlines()) == 1

    def test_transient_crash_recovers_on_retry(self, evaluator, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ATTEMPT_LOG", str(tmp_path / "t.log"))
        ev = evaluator(
            transient_crash_builder, jobs=1, max_retries=2, retry_backoff=0.0
        )
        res = ev.evaluate({"P0": 2})
        assert res.ok
        assert res.extra["retries"] >= 1.0
        assert ev.n_retries >= 1

    def test_deterministic_errors_not_retried(self, evaluator, tmp_path, monkeypatch):
        # Compile errors come back as payloads, not crashes: no retry loop.
        ev = evaluator(compile_error_builder, jobs=1, max_retries=5)
        ev.evaluate({"P0": 2})
        assert ev.n_retries == 0


class TestBuildCacheIntegration:
    def test_duplicate_config_hits_cache(self, evaluator):
        ev = evaluator(good_builder, jobs=1)
        first = ev.evaluate({"P0": 2})
        second = ev.evaluate({"P0": 2})
        assert first.extra["cache_hit"] == 0.0
        assert second.extra["cache_hit"] == 1.0
        assert ev.cache.hits == 1
        assert second.ok

    def test_shared_cache_across_evaluators(self, evaluator):
        shared = BuildCache()
        ev1 = evaluator(good_builder, jobs=1, cache=shared)
        ev1.evaluate({"P0": 2})
        ev2 = evaluator(good_builder, jobs=1, cache=shared)
        res = ev2.evaluate({"P0": 2})
        assert res.extra["cache_hit"] == 1.0

    def test_cache_disabled(self, evaluator):
        ev = evaluator(good_builder, jobs=1, use_cache=False)
        ev.evaluate({"P0": 2})
        ev.evaluate({"P0": 2})
        assert ev.cache.hits == 0 and ev.cache.misses == 0

    def test_cached_run_matches_uncached(self, evaluator):
        ev = evaluator(good_builder, jobs=1, validate=check_matmul_validator)
        assert ev.evaluate({"P0": 2}).ok
        assert ev.evaluate({"P0": 2}).ok  # rehydrated module still correct


class TestEvaluateBatchDispatch:
    def test_dispatches_to_native_batch(self, evaluator):
        ev = evaluator(good_builder, jobs=2)
        results = evaluate_batch(ev, [{"P0": 1}, {"P0": 2}], jobs=99)
        assert all(r.ok for r in results)

    def test_jobs_validation(self, evaluator):
        ev = evaluator(good_builder, jobs=1)
        with pytest.raises(ReproError):
            evaluate_batch(ev, [{"P0": 1}], jobs=0)


class TestLocalEvaluatorRegression:
    """Satellite: LocalEvaluator must survive plain Exceptions (the old code
    caught only ReproError and let anything else kill the search)."""

    def test_plain_exception_in_builder_is_failed_result(self):
        from repro.runtime import LocalEvaluator

        ev = LocalEvaluator(plain_exception_builder)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert res.mean_cost == FAILED_COST
        assert "ValueError" in res.error

    def test_plain_exception_in_validator_is_failed_result(self):
        from repro.runtime import LocalEvaluator

        ev = LocalEvaluator(good_builder, validate=crashing_validator)
        res = ev.evaluate({"P0": 2})
        assert not res.ok
        assert "RuntimeError" in res.error

    def test_search_survives_exception_heavy_space(self):
        """A whole AMBS run over a builder that always raises completes."""
        from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
        from repro.runtime import LocalEvaluator
        from repro.ytopt.problem import TuningProblem
        from repro.ytopt.search import AMBS
        from repro.common.errors import TuningError

        space = ConfigurationSpace(name="s", seed=0)
        space.add_hyperparameters([OrdinalHyperparameter("P0", [1, 2, 3, 4])])
        problem = TuningProblem(space, LocalEvaluator(plain_exception_builder))
        search = AMBS(problem, max_evals=4, seed=0)
        with pytest.raises(TuningError):
            # every eval failed -> no best; but the search loop itself survived
            search.run()
        assert len(search.database) == 4
        assert all(not r.ok for r in search.database)


def test_failed_costs_use_sentinel():
    assert FAILED_COST == pytest.approx(1.0e10)
    r = ParallelEvaluator(good_builder)._failure({"P0": 1}, "boom")
    assert r.mean_cost == FAILED_COST
    assert r.min_cost == FAILED_COST
    assert not np.isnan(r.mean_cost)
