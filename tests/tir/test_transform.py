"""Tests for TIR passes: simplification and unrolling."""

import pytest

import repro.te as te
from repro.common.errors import LoweringError
from repro.te.expr import Add, FloorDiv, FloorMod, IntImm, Mul, Var, const
from repro.tir import (
    BufferStore,
    For,
    IfThenElse,
    SeqStmt,
    count_loops,
    lower,
    simplify_func,
    simplify_stmt,
    unroll_loops,
)
from repro.tir.stmt import Buffer, Evaluate
from repro.tir.transform import simplify_expr


class TestSimplifyExpr:
    def test_const_folding_int(self):
        e = simplify_expr(const(3) + const(4))
        assert isinstance(e, IntImm) and e.value == 7

    def test_const_folding_mul(self):
        e = simplify_expr(const(3) * const(4))
        assert e.value == 12

    def test_add_zero_elided(self):
        x = Var("x")
        assert simplify_expr(x + 0) is x
        assert simplify_expr(0 + x) is x

    def test_mul_one_elided(self):
        x = Var("x")
        assert simplify_expr(x * 1) is x

    def test_mul_zero_collapses(self):
        x = Var("x")
        e = simplify_expr(x * 0)
        assert isinstance(e, IntImm) and e.value == 0

    def test_floordiv_by_one(self):
        x = Var("x")
        assert simplify_expr(FloorDiv(x, const(1))) is x

    def test_floormod_by_one(self):
        x = Var("x")
        e = simplify_expr(FloorMod(x, const(1)))
        assert isinstance(e, IntImm) and e.value == 0

    def test_nested_folding(self):
        x = Var("x")
        # (x * 1) + (2 + 3) -> x + 5
        e = simplify_expr(Add(Mul(x, const(1)), Add(const(2), const(3))))
        assert isinstance(e, Add)
        assert e.a is x and e.b.value == 5

    def test_float_folding(self):
        e = simplify_expr(const(1.5) + const(2.5))
        assert e.value == 4.0


class TestSimplifyStmt:
    def _store(self, value):
        buf = Buffer("b", (4,), "float32")
        return BufferStore(buf, value, (const(0),))

    def test_true_guard_pruned(self):
        stmt = IfThenElse(const(1), self._store(const(1.0)))
        out = simplify_stmt(stmt)
        assert isinstance(out, BufferStore)

    def test_false_guard_without_else_becomes_empty(self):
        out = simplify_stmt(IfThenElse(const(0), self._store(const(1.0))))
        assert isinstance(out, SeqStmt) and not out.stmts

    def test_false_guard_takes_else(self):
        out = simplify_stmt(
            IfThenElse(const(0), self._store(const(1.0)), self._store(const(2.0)))
        )
        assert isinstance(out, BufferStore) and out.value.value == 2.0

    def test_dynamic_guard_kept(self):
        out = simplify_stmt(IfThenElse(Var("x") < 3, self._store(const(1.0))))
        assert isinstance(out, IfThenElse)


class TestUnroll:
    def _loop(self, extent, kind="unrolled"):
        buf = Buffer("b", (16,), "float32")
        v = Var("i")
        body = BufferStore(buf, const(1.0), (v,))
        return For(v, const(0), const(extent), kind, body)

    def test_unroll_expands(self):
        out = unroll_loops(self._loop(4))
        assert isinstance(out, SeqStmt) and len(out.stmts) == 4
        # Loop var replaced by constants 0..3.
        assert [s.indices[0].value for s in out.stmts] == [0, 1, 2, 3]

    def test_serial_untouched(self):
        loop = self._loop(4, kind="serial")
        out = unroll_loops(loop)
        assert isinstance(out, For) and out.kind == "serial"

    def test_oversized_unroll_degrades_to_serial(self):
        out = unroll_loops(self._loop(100), max_steps=8)
        assert isinstance(out, For) and out.kind == "serial"

    def test_non_constant_extent_rejected(self):
        buf = Buffer("b", (16,), "float32")
        v, n = Var("i"), Var("n")
        loop = For(v, const(0), n, "unrolled", BufferStore(buf, const(1.0), (v,)))
        with pytest.raises(LoweringError):
            unroll_loops(loop)

    def test_unroll_through_schedule(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        yo, yi = s[C].split(s[C].op.axis[0], factor=3)
        s[C].unroll(yi)
        func = simplify_func(lower(s, [A, B, C]))
        assert count_loops(func.body).get("unrolled", 0) == 0  # expanded away


class TestCountLoops:
    def test_counts_by_kind(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        func = lower(s, [A, B, C])
        counts = count_loops(func.body)
        # Outer i, j; the init store needs no extra loops (reduce axis is
        # innermost), then the k update loop: 3 serial loops.
        assert counts == {"serial": 3}
