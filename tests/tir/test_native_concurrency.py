"""Native-toolchain process hygiene: atomic ``.so`` publication under
concurrent writers, and the per-path negative probe cache."""

import os
import stat
import threading

import pytest

import importlib

# Bind the module itself: the ``repro.tir`` package also exports a
# *function* named ``codegen_c`` that shadows attribute-style imports.
codegen_c = importlib.import_module("repro.tir.codegen_c")

from repro.tir.codegen_c import (  # noqa: E402
    NativeToolchainError,
    compile_source,
    find_toolchain,
    native_key,
    reset_native_runtime,
)


@pytest.fixture
def clean_native_state():
    reset_native_runtime()
    try:
        yield
    finally:
        reset_native_runtime()


def _slow_cc(tmp_path):
    """A fake compiler that takes visibly long and writes a known payload,
    so two racing writers genuinely overlap inside the 'compile'."""
    script = tmp_path / "slowcc"
    script.write_text(
        "#!/bin/sh\n"
        'if [ "$1" = "--version" ]; then echo slowcc 1.0; exit 0; fi\n'
        'out=""; prev=""\n'
        'for a in "$@"; do\n'
        '  if [ "$prev" = "-o" ]; then out="$a"; fi\n'
        '  prev="$a"\n'
        "done\n"
        "sleep 0.2\n"
        "printf 'SHAREDOBJECT' > \"$out\"\n"
    )
    script.chmod(script.stat().st_mode | stat.S_IXUSR)
    return script


class TestAtomicSoPublication:
    def test_two_writers_same_key_publish_once_atomically(
        self, clean_native_state, monkeypatch, tmp_path
    ):
        """Two threads compiling the same source concurrently (the build
        pool's spec-hit race, or two processes sharing REPRO_NATIVE_DIR)
        both succeed, agree on the artifact path, and leave neither torn
        output nor temp litter behind."""
        monkeypatch.setenv("REPRO_CC", str(_slow_cc(tmp_path)))
        workdir = tmp_path / "artifacts"
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(workdir))
        toolchain = find_toolchain()
        source = "int the_payload;\n"
        results, errors = [], []

        def writer():
            try:
                results.append(compile_source(source, toolchain))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(set(results)) == 1
        so_path = results[0]
        key = native_key(source, toolchain)
        assert os.path.basename(so_path) == f"{key}.so"
        with open(so_path, "rb") as fh:
            assert fh.read() == b"SHAREDOBJECT"  # last writer, never torn
        leftovers = [n for n in os.listdir(workdir) if ".tmp" in n]
        assert leftovers == []

    def test_existing_artifact_short_circuits(
        self, clean_native_state, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CC", str(_slow_cc(tmp_path)))
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path / "artifacts"))
        toolchain = find_toolchain()
        source = "int cached;\n"
        first = compile_source(source, toolchain)
        mtime = os.path.getmtime(first)
        assert compile_source(source, toolchain) == first
        assert os.path.getmtime(first) == mtime  # no recompile


class TestNegativeProbeCache:
    def test_failed_probe_cached_per_path(self, clean_native_state, monkeypatch):
        """A missing/broken compiler is probed once per process, not once
        per build attempt — each retry would cost a subprocess spawn (or a
        30s timeout for a hung wrapper)."""
        probes = []
        real_probe = codegen_c._probe_version

        def counting_probe(path):
            probes.append(path)
            return real_probe(path)

        monkeypatch.setattr(codegen_c, "_probe_version", counting_probe)
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        for _ in range(3):
            with pytest.raises(NativeToolchainError, match="no usable C compiler"):
                find_toolchain()
        assert probes == ["/nonexistent/cc"]

    def test_successful_probe_cached_too(
        self, clean_native_state, monkeypatch, tmp_path
    ):
        probes = []
        real_probe = codegen_c._probe_version

        def counting_probe(path):
            probes.append(path)
            return real_probe(path)

        monkeypatch.setattr(codegen_c, "_probe_version", counting_probe)
        monkeypatch.setenv("REPRO_CC", str(_slow_cc(tmp_path)))
        assert find_toolchain() is find_toolchain()
        assert len(probes) == 1

    def test_reset_clears_the_negative_cache(
        self, clean_native_state, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        with pytest.raises(NativeToolchainError):
            find_toolchain()
        # The compiler "appears" (env now points at a working one) — after a
        # reset the fresh probe must see it.
        monkeypatch.setenv("REPRO_CC", str(_slow_cc(tmp_path)))
        reset_native_runtime()
        assert find_toolchain().version.startswith("slowcc")
