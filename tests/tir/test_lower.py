"""Tests for schedule -> TIR lowering."""

import pytest

import repro.te as te
from repro.common.errors import LoweringError
from repro.tir import For, IfThenElse, SeqStmt, count_loops, lower, simplify_func
from repro.tir.stmt import Allocate, BufferStore
from tests.conftest import make_matmul


def _loops_in_order(stmt):
    out = []
    from repro.tir.stmt import visit_stmt

    visit_stmt(stmt, lambda s: out.append(s) if isinstance(s, For) else None)
    return out


class TestBasicLowering:
    def test_elementwise_loop_order(self):
        A = te.placeholder((4, 6), name="A")
        B = te.compute((4, 6), lambda i, j: A[i, j] + 1.0, name="B")
        s = te.create_schedule(B.op)
        func = lower(s, [A, B])
        loops = _loops_in_order(func.body)
        assert [l.loop_var.name for l in loops] == ["i", "j"]
        assert [int(l.extent.value) for l in loops] == [4, 6]

    def test_param_order_preserved(self, matmul):
        A, B, C = matmul
        func = lower(te.create_schedule(C.op), [A, B, C])
        assert [b.name for b in func.params] == ["A", "B", "C"]

    def test_reduction_has_init_and_update(self, matmul):
        A, B, C = matmul
        func = lower(te.create_schedule(C.op), [A, B, C])
        stores = []
        from repro.tir.stmt import visit_stmt

        visit_stmt(
            func.body, lambda s: stores.append(s) if isinstance(s, BufferStore) else None
        )
        assert len(stores) == 2  # init + update

    def test_missing_placeholder_rejected(self, matmul):
        A, B, C = matmul
        with pytest.raises(LoweringError):
            lower(te.create_schedule(C.op), [A, C])  # B missing

    def test_duplicate_arg_rejected(self, matmul):
        A, B, C = matmul
        with pytest.raises(LoweringError):
            lower(te.create_schedule(C.op), [A, A, B, C])

    def test_intermediate_allocated(self):
        A = te.placeholder((4, 4), name="A")
        B = te.compute((4, 4), lambda i, j: A[i, j] + 1.0, name="B")
        C = te.compute((4, 4), lambda i, j: B[i, j] * 2.0, name="C")
        func = lower(te.create_schedule(C.op), [A, C])
        assert isinstance(func.body, Allocate)
        assert func.body.buffer.name == "B"

    def test_buffer_name_collision_resolved(self):
        A1 = te.placeholder((2,), name="X")
        A2 = te.placeholder((2,), name="X")
        B = te.compute((2,), lambda i: A1[i] + A2[i], name="B")
        func = lower(te.create_schedule(B.op), [A1, A2, B])
        names = [b.name for b in func.params]
        assert len(set(names)) == 3


class TestSplitLowering:
    def test_paper_reorder_loop_structure(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        k = s[C].op.reduce_axis[0]
        yo, yi = s[C].split(y, 4)
        xo, xi = s[C].split(x, 5)
        s[C].reorder(yo, xo, k, yi, xi)
        func = lower(s, [A, B, C])
        names = [l.loop_var.name for l in _loops_in_order(func.body)]
        # outer loops, then the init nest (yi, xi), then update nest (k, yi, xi)
        assert names == ["i.outer", "j.outer", "i.inner", "j.inner", "k", "i.inner", "j.inner"]

    def test_divisible_split_has_no_guard(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        s[C].split(s[C].op.axis[0], factor=4)  # 12 % 4 == 0
        func = simplify_func(lower(s, [A, B, C]))
        guards = []
        from repro.tir.stmt import visit_stmt

        visit_stmt(
            func.body,
            lambda st: guards.append(st) if isinstance(st, IfThenElse) else None,
        )
        assert not guards

    def test_non_divisible_split_guarded(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        s[C].split(s[C].op.axis[0], factor=5)  # ceil(12/5)*5 > 12
        func = lower(s, [A, B, C])
        guards = []
        from repro.tir.stmt import visit_stmt

        visit_stmt(
            func.body,
            lambda st: guards.append(st) if isinstance(st, IfThenElse) else None,
        )
        assert guards

    def test_fuse_lowering_extent(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        fused = s[C].fuse(*s[C].op.axis)
        func = lower(s, [A, B, C])
        loops = _loops_in_order(func.body)
        assert int(loops[0].extent.value) == 120


class TestAnnotationsLowering:
    def test_kinds_propagate(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        yo, yi = s[C].split(y, 4)
        s[C].parallel(yo)
        s[C].vectorize(x)
        func = lower(s, [A, B, C])
        counts = count_loops(func.body)
        assert counts.get("parallel") == 1
        assert counts.get("vectorized", 0) >= 1

    def test_vectorize_non_innermost_rejected(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        s[C].vectorize(y)  # y is outer; x and k are inside
        with pytest.raises(LoweringError):
            lower(s, [A, B, C])

    def test_thread_binding_tag(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        s[C].bind(s[C].op.axis[0], te.thread_axis(tag="blockIdx.x"))
        func = lower(s, [A, B, C])
        loops = _loops_in_order(func.body)
        assert loops[0].kind == "thread_binding"
        assert loops[0].thread_tag == "blockIdx.x"


class TestMultiStage:
    def test_three_stage_3mm_structure(self):
        from repro.kernels import problem_size, threemm_tuned

        size = problem_size("3mm", "mini")
        sched, args = threemm_tuned(
            size, {"P0": 4, "P1": 5, "P2": 4, "P3": 6, "P4": 8, "P5": 4}
        )
        func = lower(sched, args)
        # E and F are intermediates -> two Allocates wrap the body.
        assert isinstance(func.body, Allocate)
        assert isinstance(func.body.body, Allocate)
        assert func.attrs["num_stages"] == 3
