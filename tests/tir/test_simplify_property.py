"""Property: simplification preserves expression values.

Random integer expression trees over a few variables are evaluated with random
environments before and after ``simplify_expr`` — the results must be
identical. This fuzzes the constant-folding/identity rules far beyond the
hand-written cases.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.te.expr import (
    Add,
    Expr,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Mul,
    Sub,
    Var,
    const,
)
from repro.tir.transform import simplify_expr

_VARS = [Var("a"), Var("b"), Var("c")]


def _eval(expr: Expr, env: dict) -> int:
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, IntImm):
        return expr.value
    if isinstance(expr, Add):
        return _eval(expr.a, env) + _eval(expr.b, env)
    if isinstance(expr, Sub):
        return _eval(expr.a, env) - _eval(expr.b, env)
    if isinstance(expr, Mul):
        return _eval(expr.a, env) * _eval(expr.b, env)
    if isinstance(expr, FloorDiv):
        return _eval(expr.a, env) // _eval(expr.b, env)
    if isinstance(expr, FloorMod):
        return _eval(expr.a, env) % _eval(expr.b, env)
    if isinstance(expr, Min):
        return min(_eval(expr.a, env), _eval(expr.b, env))
    if isinstance(expr, Max):
        return max(_eval(expr.a, env), _eval(expr.b, env))
    raise AssertionError(f"unhandled {type(expr).__name__}")


def _expr_strategy() -> st.SearchStrategy:
    leaves = st.one_of(
        st.sampled_from(_VARS),
        st.integers(min_value=0, max_value=12).map(lambda v: const(v, "int32")),
    )

    def extend(children):
        binary = st.sampled_from([Add, Sub, Mul, Min, Max])
        # Division/modulo get positive constant denominators only (matching
        # how lowering uses them), to keep semantics total.
        posdenom = st.integers(min_value=1, max_value=7).map(lambda v: const(v, "int32"))
        return st.one_of(
            st.tuples(binary, children, children).map(lambda t: t[0](t[1], t[2])),
            st.tuples(st.sampled_from([FloorDiv, FloorMod]), children, posdenom).map(
                lambda t: t[0](t[1], t[2])
            ),
        )

    return st.recursive(leaves, extend, max_leaves=24)


class TestSimplifyProperty:
    @settings(max_examples=200, deadline=None)
    @given(expr=_expr_strategy(), a=st.integers(0, 50), b=st.integers(0, 50), c=st.integers(0, 50))
    def test_value_preserved(self, expr, a, b, c):
        env = {"a": a, "b": b, "c": c}
        assert _eval(simplify_expr(expr), env) == _eval(expr, env)

    @settings(max_examples=100, deadline=None)
    @given(expr=_expr_strategy())
    def test_idempotent(self, expr):
        once = simplify_expr(expr)
        twice = simplify_expr(once)
        from repro.te.expr import structural_equal

        assert structural_equal(once, twice)

    @settings(max_examples=100, deadline=None)
    @given(expr=_expr_strategy())
    def test_never_grows(self, expr):
        def size(e):
            return 1 + sum(size(ch) for ch in e.children())

        assert size(simplify_expr(expr)) <= size(expr)
