"""Unit tests for the native C emitter and its graceful-degradation story.

Emitter tests pin down C fragment semantics construct-by-construct —
floor-division on negatives, ternary min/max/select, bool casts, heap
allocation scoping — both at the source level (what text is emitted) and,
when a toolchain exists, end-to-end through compile + ctypes execution.

Degradation tests prove a broken toolchain is never fatal: the first failed
build emits exactly one ``RuntimeWarning`` and one ``NativeDisabled``
telemetry event, every build (including the first) lands on the tensor tier,
and no later build warns again.
"""

from __future__ import annotations

import os
import stat
import warnings

import numpy as np
import pytest

import repro.te as te
from repro.runtime import build
from repro.te.expr import (
    Call,
    Cast,
    Div,
    FloatImm,
    FloorDiv,
    FloorMod,
    IntImm,
    Max,
    Min,
    Select,
    Var,
)
from repro.telemetry import RecordingSink, Telemetry, telemetry_session
from repro.tir.codegen_py import CodegenUnsupported
from repro.tir.codegen_c import (
    NativeToolchainError,
    SYMBOL_PREFIX,
    build_callable_native,
    codegen_c,
    find_toolchain,
    native_disabled,
    reset_native_runtime,
    source_key,
)
from repro.tir.stmt import (
    Allocate,
    Buffer,
    BufferLoad,
    BufferStore,
    For,
    PrimFunc,
    SeqStmt,
)
from tests.conftest import make_matmul

try:
    find_toolchain()
    HAS_TOOLCHAIN = True
except NativeToolchainError:  # pragma: no cover - CI images ship gcc
    HAS_TOOLCHAIN = False

needs_cc = pytest.mark.skipif(not HAS_TOOLCHAIN, reason="no C toolchain")


def _expr_func(out_dtype: str, value_of) -> PrimFunc:
    """out[i] = value_of(i) over an 8-element buffer (an expression harness)."""
    out = Buffer("out", (8,), out_dtype)
    i = Var("i", "int32")
    body = For(
        i,
        IntImm(0),
        IntImm(8),
        "serial",
        BufferStore(out, value_of(i), (i,)),
    )
    return PrimFunc("expr_case", [out], body)


def _run_native(func: PrimFunc, *arrays: np.ndarray) -> None:
    entry = build_callable_native(func)
    entry(*arrays)


class TestEmitterSource:
    def test_symbol_prefix_and_abi(self, matmul):
        A, B, C = matmul
        s = te.create_schedule(C.op)
        from repro.tir import lower, simplify_func

        source = codegen_c(simplify_func(lower(s, [A, B, C])))
        assert f"void {SYMBOL_PREFIX}main(" in source
        # Flat packed-function ABI: each buffer is a (data, shape) pair.
        assert "float* A, const int64_t* A_shape" in source
        assert "(void)A_shape;" in source

    def test_floor_ops_use_helpers(self):
        func = _expr_func(
            "int32",
            lambda i: FloorDiv(i, IntImm(3)) + FloorMod(i, IntImm(3)),
        )
        source = codegen_c(func)
        assert "repro_floordiv(" in source
        assert "repro_floormod(" in source

    def test_min_max_select_are_ternary(self):
        func = _expr_func(
            "int32",
            lambda i: Select(
                i < IntImm(4), Min(i, IntImm(2)), Max(i, IntImm(6))
            ),
        )
        source = codegen_c(func)
        assert source.count("?") >= 3  # select + min + max

    def test_bool_cast_normalizes(self):
        func = _expr_func("bool", lambda i: Cast(i, "bool"))
        assert "(uint8_t)((" in codegen_c(func)

    def test_allocate_pairs_calloc_free(self):
        scratch = Buffer("scratch", (4, 4), "float64")
        out = Buffer("out", (4, 4), "float64")
        i, j = Var("i"), Var("j")
        inner = SeqStmt(
            [
                BufferStore(scratch, FloatImm(2.0, "float64"), (i, j)),
                BufferStore(out, BufferLoad(scratch, (i, j)), (i, j)),
            ]
        )
        nest = For(
            i, IntImm(0), IntImm(4), "serial",
            For(j, IntImm(0), IntImm(4), "serial", inner),
        )
        func = PrimFunc("alloc_case", [out], Allocate(scratch, nest))
        source = codegen_c(func)
        assert "calloc((size_t)16, sizeof(double))" in source
        assert "free(scratch);" in source

    def test_int_operand_true_division_casts(self):
        # te.Div promotes int/int to float32; the emitted C must cast the
        # integer operands so the division doesn't truncate.
        func = _expr_func("float32", lambda i: Div(i, IntImm(2)))
        assert "(float)(" in codegen_c(func)

    def test_integer_true_division_unsupported(self):
        # An un-promoted integer Div (impossible through te today, but the
        # emitter guards its own fragment) is rejected, not mis-emitted.
        func = _expr_func("int32", lambda i: Div(i, IntImm(2)))
        visit = []

        def _force_int(e):
            if isinstance(e, Div):
                e.dtype = "int32"
                visit.append(e)
            for c in e.children():
                _force_int(c)

        _force_int(func.body.body.value)
        assert visit
        with pytest.raises(CodegenUnsupported, match="true division"):
            codegen_c(func, optimize=False)

    def test_float_floormod_unsupported(self):
        func = _expr_func(
            "float32",
            lambda i: FloorMod(Cast(i, "float32"), FloatImm(2.0)),
        )
        with pytest.raises(CodegenUnsupported, match="floormod"):
            codegen_c(func)

    def test_unmapped_call_unsupported(self):
        # sqrt over an integer dtype has no C mapping (only llabs does).
        func = _expr_func("int32", lambda i: Call("sqrt", (i,), "int32"))
        with pytest.raises(CodegenUnsupported, match="sqrt"):
            codegen_c(func)

    def test_reserved_identifiers_renamed(self):
        out = Buffer("double", (8,), "float32")
        i = Var("for", "int32")
        body = For(
            i, IntImm(0), IntImm(8), "serial",
            BufferStore(out, Cast(i, "float32"), (i,)),
        )
        source = codegen_c(PrimFunc("kw_case", [out], body))
        assert "float* double," not in source
        assert "int64_t for =" not in source

    def test_source_key_is_content_hash(self):
        assert source_key("int x;") == source_key("int x;")
        assert source_key("int x;") != source_key("int y;")
        assert len(source_key("")) == 64


@needs_cc
class TestEmitterExecution:
    def test_floordiv_floormod_negative_operands(self):
        func = _expr_func(
            "int32", lambda i: FloorDiv(i - IntImm(4), IntImm(3))
        )
        out = np.zeros(8, dtype=np.int32)
        _run_native(func, out)
        expected = np.array([(i - 4) // 3 for i in range(8)], dtype=np.int32)
        np.testing.assert_array_equal(out, expected)

        func = _expr_func(
            "int32", lambda i: FloorMod(i - IntImm(4), IntImm(3))
        )
        out = np.zeros(8, dtype=np.int32)
        _run_native(func, out)
        expected = np.array([(i - 4) % 3 for i in range(8)], dtype=np.int32)
        np.testing.assert_array_equal(out, expected)

    def test_select_min_max(self):
        func = _expr_func(
            "int32",
            lambda i: Select(
                i < IntImm(4), Min(i, IntImm(2)), Max(i, IntImm(6))
            ),
        )
        out = np.zeros(8, dtype=np.int32)
        _run_native(func, out)
        expected = np.array(
            [min(i, 2) if i < 4 else max(i, 6) for i in range(8)],
            dtype=np.int32,
        )
        np.testing.assert_array_equal(out, expected)

    def test_float_math_calls(self):
        func = _expr_func(
            "float64",
            lambda i: Call(
                "sqrt",
                (Cast(i, "float64") + FloatImm(1.0, "float64"),),
                "float64",
            ),
        )
        out = np.zeros(8, dtype=np.float64)
        _run_native(func, out)
        np.testing.assert_allclose(out, np.sqrt(np.arange(8) + 1.0))

    def test_allocate_roundtrip(self):
        scratch = Buffer("scratch", (8,), "float64")
        out = Buffer("out", (8,), "float64")
        i = Var("i")
        body = Allocate(
            scratch,
            SeqStmt(
                [
                    For(
                        i, IntImm(0), IntImm(8), "serial",
                        BufferStore(
                            scratch, Cast(i, "float64") * FloatImm(3.0, "float64"), (i,)
                        ),
                    ),
                    For(
                        i, IntImm(0), IntImm(8), "serial",
                        BufferStore(out, BufferLoad(scratch, (i,)), (i,)),
                    ),
                ]
            ),
        )
        func = PrimFunc("alloc_rt", [out], body)
        out_arr = np.zeros(8, dtype=np.float64)
        _run_native(func, out_arr)
        np.testing.assert_allclose(out_arr, np.arange(8) * 3.0)

    def test_non_contiguous_input_rejected(self):
        from repro.common.errors import ExecutionError
        from repro.tir import lower, simplify_func

        A, B, C = make_matmul()
        s = te.create_schedule(C.op)
        entry = build_callable_native(simplify_func(lower(s, [A, B, C])))
        a = np.ones((12, 16), dtype=np.float32)[:, ::2]
        b = np.ones((8, 10), dtype=np.float32)
        c = np.zeros((12, 10), dtype=np.float32)
        with pytest.raises(ExecutionError, match="C-contiguous"):
            entry(a, b, c)


@pytest.fixture
def clean_native_state():
    """Isolate the process-global disable flag and probe/entry caches."""
    reset_native_runtime()
    try:
        yield
    finally:
        reset_native_runtime()


def _build_matmul(backend: str = "native"):
    A, B, C = make_matmul()
    s = te.create_schedule(C.op)
    return build(s, [A, B, C], backend=backend)


class TestGracefulDegradation:
    def test_missing_compiler_falls_back_once(self, clean_native_state, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        sink = RecordingSink()
        with telemetry_session(Telemetry([sink])):
            with pytest.warns(RuntimeWarning, match="native backend disabled"):
                mod = _build_matmul("native")
            assert mod.backend == "tensor"
            assert native_disabled() is not None
            assert sink.kinds().count("native_disabled") == 1
            # Later builds fall back silently: no second warning, no event.
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                mod2 = _build_matmul("native")
            assert mod2.backend == "tensor"
            assert not [w for w in caught if w.category is RuntimeWarning]
            assert sink.kinds().count("native_disabled") == 1
            # The ladder telemetry records the fallback reason.
            selected = [e for e in sink.events if e.kind == "backend_selected"]
            assert selected and all(e.selected == "tensor" for e in selected)
            assert "disabled" in selected[-1].reason

    def test_compile_failure_falls_back_once(
        self, clean_native_state, monkeypatch, tmp_path
    ):
        # A fake cc that probes fine but rejects every translation unit.
        fake = tmp_path / "fakecc"
        fake.write_text(
            "#!/bin/sh\n"
            'if [ "$1" = "--version" ]; then echo fakecc 1.0; exit 0; fi\n'
            "echo boom >&2\nexit 1\n"
        )
        fake.chmod(fake.stat().st_mode | stat.S_IXUSR)
        monkeypatch.setenv("REPRO_CC", str(fake))
        sink = RecordingSink()
        with telemetry_session(Telemetry([sink])):
            with pytest.warns(RuntimeWarning, match="native backend disabled"):
                mod = _build_matmul("native")
            assert mod.backend == "tensor"
            assert "boom" in native_disabled()
            events = [e for e in sink.events if e.kind == "native_disabled"]
            assert len(events) == 1
            assert events[0].compiler == str(fake)

    def test_output_still_correct_after_fallback(
        self, clean_native_state, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        with pytest.warns(RuntimeWarning):
            mod = _build_matmul("native")
        rng = np.random.default_rng(7)
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c = np.zeros((12, 10), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-6)

    @needs_cc
    def test_reset_reenables_the_tier(self, clean_native_state, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        with pytest.warns(RuntimeWarning):
            assert _build_matmul("native").backend == "tensor"
        monkeypatch.delenv("REPRO_CC")
        reset_native_runtime()
        assert native_disabled() is None
        assert _build_matmul("native").backend == "native"

    def test_disabled_tier_raises_codegen_unsupported(
        self, clean_native_state, monkeypatch
    ):
        from repro.tir import lower, simplify_func

        monkeypatch.setenv("REPRO_CC", "/nonexistent/cc")
        A, B, C = make_matmul()
        s = te.create_schedule(C.op)
        func = simplify_func(lower(s, [A, B, C]))
        with pytest.warns(RuntimeWarning):
            with pytest.raises(CodegenUnsupported, match="disabled"):
                build_callable_native(func)
        # Once disabled: same exception, no emit/probe work repeated.
        with pytest.raises(CodegenUnsupported, match="disabled"):
            build_callable_native(func)
