// golden: jacobi2d seed-0 config {'P0': 15, 'P1': 10}
// source_key: cfa4ccb79141417e9ac37219f295e37213332755c90a83fd20505449b911ef8e
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

static inline int64_t repro_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

static inline int64_t repro_floormod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

void repro_main(double* A, const int64_t* A_shape, double* sweep1, const int64_t* sweep1_shape) {
    (void)A_shape;
    (void)sweep1_shape;
    double* sweep0 = (double*)calloc((size_t)144, sizeof(double));
    for (int64_t i_outer = 0; i_outer < 0 + 1; ++i_outer) {
        const int64_t licm7 = (i_outer * 12);
        for (int64_t j_outer = 0; j_outer < 0 + 2; ++j_outer) {
            const int64_t licm5 = licm7;
            const int64_t licm6 = (j_outer * 10);
            for (int64_t i_inner = 0; i_inner < 0 + 12; ++i_inner) {
                const uint8_t licm0 = (((licm5 + i_inner) > 0) && ((licm5 + i_inner) < 11));
                const int64_t licm1 = ((((licm5 + i_inner) - 1)) > (0) ? (((licm5 + i_inner) - 1)) : (0));
                const int64_t licm2 = ((((licm5 + i_inner) + 1)) < (11) ? (((licm5 + i_inner) + 1)) : (11));
                const int64_t licm3 = (licm5 + i_inner);
                const int64_t licm4 = licm6;
                for (int64_t j_inner = 0; j_inner < 0 + 10; ++j_inner) {
                    if (((licm4 + j_inner) < 12)) {
                        const int64_t cse1 = (licm4 + j_inner);
                        const double cse0 = A[(licm3) * 12 + cse1];
                        sweep0[(licm3) * 12 + cse1] = (((licm0 && ((cse1 > 0) && (cse1 < 11)))) ? ((0.2 * ((((cse0 + A[(licm3) * 12 + (((cse1 - 1)) > (0) ? ((cse1 - 1)) : (0))]) + A[(licm3) * 12 + (((cse1 + 1)) < (11) ? ((cse1 + 1)) : (11))]) + A[(licm1) * 12 + cse1]) + A[(licm2) * 12 + cse1]))) : (cse0));
                    }
                }
            }
        }
    }
    for (int64_t i_outer_1 = 0; i_outer_1 < 0 + 1; ++i_outer_1) {
        const int64_t licm15 = (i_outer_1 * 12);
        for (int64_t j_outer_1 = 0; j_outer_1 < 0 + 2; ++j_outer_1) {
            const int64_t licm13 = licm15;
            const int64_t licm14 = (j_outer_1 * 10);
            for (int64_t i_inner_1 = 0; i_inner_1 < 0 + 12; ++i_inner_1) {
                const uint8_t licm8 = (((licm13 + i_inner_1) > 0) && ((licm13 + i_inner_1) < 11));
                const int64_t licm9 = ((((licm13 + i_inner_1) - 1)) > (0) ? (((licm13 + i_inner_1) - 1)) : (0));
                const int64_t licm10 = ((((licm13 + i_inner_1) + 1)) < (11) ? (((licm13 + i_inner_1) + 1)) : (11));
                const int64_t licm11 = (licm13 + i_inner_1);
                const int64_t licm12 = licm14;
                for (int64_t j_inner_1 = 0; j_inner_1 < 0 + 10; ++j_inner_1) {
                    if (((licm12 + j_inner_1) < 12)) {
                        const int64_t cse3 = (licm12 + j_inner_1);
                        const double cse2 = sweep0[(licm11) * 12 + cse3];
                        sweep1[(licm11) * 12 + cse3] = (((licm8 && ((cse3 > 0) && (cse3 < 11)))) ? ((0.2 * ((((cse2 + sweep0[(licm11) * 12 + (((cse3 - 1)) > (0) ? ((cse3 - 1)) : (0))]) + sweep0[(licm11) * 12 + (((cse3 + 1)) < (11) ? ((cse3 + 1)) : (11))]) + sweep0[(licm9) * 12 + cse3]) + sweep0[(licm10) * 12 + cse3]))) : (cse2));
                    }
                }
            }
        }
    }
    free(sweep0);
}
