// golden: 3mm seed-0 config {'P0': 200, 'P1': 100, 'P2': 40, 'P3': 12, 'P4': 10, 'P5': 2}
// source_key: 9b169089edd792d3e440c82fb22232338c1fa2ea2a1852cc637484ff1dcd06ad
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

static inline int64_t repro_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

static inline int64_t repro_floormod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

void repro_main(double* A, const int64_t* A_shape, double* B, const int64_t* B_shape, double* C, const int64_t* C_shape, double* D, const int64_t* D_shape, double* G, const int64_t* G_shape) {
    (void)A_shape;
    (void)B_shape;
    (void)C_shape;
    (void)D_shape;
    (void)G_shape;
    double* E = (double*)calloc((size_t)320, sizeof(double));
    double* F = (double*)calloc((size_t)480, sizeof(double));
    for (int64_t i_outer = 0; i_outer < 0 + 1; ++i_outer) {
        const int64_t licm11 = (i_outer * 16);
        for (int64_t j_outer = 0; j_outer < 0 + 1; ++j_outer) {
            const int64_t licm2 = licm11;
            const int64_t licm3 = (j_outer * 20);
            for (int64_t i_inner = 0; i_inner < 0 + 16; ++i_inner) {
                const int64_t licm0 = (licm2 + i_inner);
                const int64_t licm1 = licm3;
                for (int64_t j_inner = 0; j_inner < 0 + 20; ++j_inner) {
                    E[(licm0) * 20 + (licm1 + j_inner)] = 0.0;
                }
            }
            const int64_t licm9 = licm11;
            const int64_t licm10 = (j_outer * 20);
            for (int64_t k = 0; k < 0 + 18; ++k) {
                const int64_t licm7 = licm9;
                const int64_t licm8 = licm10;
                for (int64_t i_inner = 0; i_inner < 0 + 16; ++i_inner) {
                    const double licm4 = A[((licm7 + i_inner)) * 18 + k];
                    const int64_t licm5 = (licm7 + i_inner);
                    const int64_t licm6 = licm8;
                    for (int64_t j_inner = 0; j_inner < 0 + 20; ++j_inner) {
                        const int64_t cse0 = (licm6 + j_inner);
                        E[(licm5) * 20 + cse0] = (E[(licm5) * 20 + cse0] + (licm4 * B[(k) * 20 + cse0]));
                    }
                }
            }
        }
    }
    for (int64_t i_outer_1 = 0; i_outer_1 < 0 + 1; ++i_outer_1) {
        const int64_t licm23 = (i_outer_1 * 20);
        for (int64_t j_outer_1 = 0; j_outer_1 < 0 + 2; ++j_outer_1) {
            const int64_t licm14 = licm23;
            const int64_t licm15 = (j_outer_1 * 12);
            for (int64_t i_inner_1 = 0; i_inner_1 < 0 + 20; ++i_inner_1) {
                const int64_t licm12 = (licm14 + i_inner_1);
                const int64_t licm13 = licm15;
                for (int64_t j_inner_1 = 0; j_inner_1 < 0 + 12; ++j_inner_1) {
                    F[(licm12) * 24 + (licm13 + j_inner_1)] = 0.0;
                }
            }
            const int64_t licm21 = licm23;
            const int64_t licm22 = (j_outer_1 * 12);
            for (int64_t l_red = 0; l_red < 0 + 22; ++l_red) {
                const int64_t licm19 = licm21;
                const int64_t licm20 = licm22;
                for (int64_t i_inner_1 = 0; i_inner_1 < 0 + 20; ++i_inner_1) {
                    const double licm16 = C[((licm19 + i_inner_1)) * 22 + l_red];
                    const int64_t licm17 = (licm19 + i_inner_1);
                    const int64_t licm18 = licm20;
                    for (int64_t j_inner_1 = 0; j_inner_1 < 0 + 12; ++j_inner_1) {
                        const int64_t cse1 = (licm18 + j_inner_1);
                        F[(licm17) * 24 + cse1] = (F[(licm17) * 24 + cse1] + (licm16 * D[(l_red) * 24 + cse1]));
                    }
                }
            }
        }
    }
    for (int64_t i_outer_2 = 0; i_outer_2 < 0 + 2; ++i_outer_2) {
        const int64_t licm35 = (i_outer_2 * 10);
        for (int64_t j_outer_2 = 0; j_outer_2 < 0 + 12; ++j_outer_2) {
            const int64_t licm26 = licm35;
            const int64_t licm27 = (j_outer_2 * 2);
            for (int64_t i_inner_2 = 0; i_inner_2 < 0 + 10; ++i_inner_2) {
                if (((licm26 + i_inner_2) < 16)) {
                    const int64_t licm24 = (licm26 + i_inner_2);
                    const int64_t licm25 = licm27;
                    for (int64_t j_inner_2 = 0; j_inner_2 < 0 + 2; ++j_inner_2) {
                        G[(licm24) * 24 + (licm25 + j_inner_2)] = 0.0;
                    }
                }
            }
            const int64_t licm33 = licm35;
            const int64_t licm34 = (j_outer_2 * 2);
            for (int64_t m_red = 0; m_red < 0 + 20; ++m_red) {
                const int64_t licm31 = licm33;
                const int64_t licm32 = licm34;
                for (int64_t i_inner_2 = 0; i_inner_2 < 0 + 10; ++i_inner_2) {
                    if (((licm31 + i_inner_2) < 16)) {
                        const double licm28 = E[((licm31 + i_inner_2)) * 20 + m_red];
                        const int64_t licm29 = (licm31 + i_inner_2);
                        const int64_t licm30 = licm32;
                        for (int64_t j_inner_2 = 0; j_inner_2 < 0 + 2; ++j_inner_2) {
                            const int64_t cse2 = (licm30 + j_inner_2);
                            G[(licm29) * 24 + cse2] = (G[(licm29) * 24 + cse2] + (licm28 * F[(m_red) * 24 + cse2]));
                        }
                    }
                }
            }
        }
    }
    free(F);
    free(E);
}
