// golden: gemm seed-0 config {'P0': 20, 'P1': 5}
// source_key: 03381446c4f4310c384a5f7afb0a702973fe7ff334950a405d512598e8f7a919
#include <stdint.h>
#include <stdlib.h>
#include <math.h>

static inline int64_t repro_floordiv(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}

static inline int64_t repro_floormod(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

void repro_main(double* A, const int64_t* A_shape, double* B, const int64_t* B_shape, double* C, const int64_t* C_shape, double* C_out, const int64_t* C_out_shape) {
    (void)A_shape;
    (void)B_shape;
    (void)C_shape;
    (void)C_out_shape;
    double* AB = (double*)calloc((size_t)500, sizeof(double));
    for (int64_t i_outer = 0; i_outer < 0 + 1; ++i_outer) {
        const int64_t licm11 = (i_outer * 20);
        for (int64_t j_outer = 0; j_outer < 0 + 5; ++j_outer) {
            const int64_t licm2 = licm11;
            const int64_t licm3 = (j_outer * 5);
            for (int64_t i_inner = 0; i_inner < 0 + 20; ++i_inner) {
                const int64_t licm0 = (licm2 + i_inner);
                const int64_t licm1 = licm3;
                for (int64_t j_inner = 0; j_inner < 0 + 5; ++j_inner) {
                    AB[(licm0) * 25 + (licm1 + j_inner)] = 0.0;
                }
            }
            const int64_t licm9 = licm11;
            const int64_t licm10 = (j_outer * 5);
            for (int64_t k = 0; k < 0 + 30; ++k) {
                const int64_t licm7 = licm9;
                const int64_t licm8 = licm10;
                for (int64_t i_inner = 0; i_inner < 0 + 20; ++i_inner) {
                    const double licm4 = A[((licm7 + i_inner)) * 30 + k];
                    const int64_t licm5 = (licm7 + i_inner);
                    const int64_t licm6 = licm8;
                    for (int64_t j_inner = 0; j_inner < 0 + 5; ++j_inner) {
                        const int64_t cse0 = (licm6 + j_inner);
                        AB[(licm5) * 25 + cse0] = (AB[(licm5) * 25 + cse0] + (licm4 * B[(k) * 25 + cse0]));
                    }
                }
            }
        }
    }
    for (int64_t i = 0; i < 0 + 20; ++i) {
        for (int64_t j = 0; j < 0 + 25; ++j) {
            C_out[(i) * 25 + j] = ((AB[(i) * 25 + j] * 1.5) + (C[(i) * 25 + j] * 1.2));
        }
    }
    free(AB);
}
