"""Tests for compute_inline (inlining elementwise stages into consumers)."""

import numpy as np
import pytest

import repro.te as te
from repro.common.errors import LoweringError, ScheduleError
from repro.runtime import build
from repro.tir import lower, simplify_func
from repro.tir.stmt import Allocate, visit_stmt


def _scaled_matmul(n=8, m=8, k=8):
    """B = A*2 (elementwise, inlinable); C = B @ W."""
    A = te.placeholder((n, k), name="A")
    W = te.placeholder((k, m), name="W")
    B = te.compute((n, k), lambda i, j: A[i, j] * 2.0, name="B")
    kk = te.reduce_axis((0, k), name="kk")
    C = te.compute(
        (n, m), lambda i, j: te.sum(B[i, kk] * W[kk, j], axis=kk), name="C"
    )
    return A, W, B, C


def _count_allocs(func):
    out = []
    visit_stmt(func.body, lambda s: out.append(s) if isinstance(s, Allocate) else None)
    return len(out)


class TestComputeInline:
    def test_inline_removes_intermediate_buffer(self):
        A, W, B, C = _scaled_matmul()
        s = te.create_schedule(C.op)
        func_with = simplify_func(lower(s, [A, W, C]))
        assert _count_allocs(func_with) == 1  # B materialized

        s2 = te.create_schedule(C.op)
        s2[B].compute_inline()
        func_inline = simplify_func(lower(s2, [A, W, C]))
        assert _count_allocs(func_inline) == 0  # B folded into C

    def test_inline_preserves_semantics(self, rng):
        A, W, B, C = _scaled_matmul()
        a = rng.random((8, 8)).astype("float32")
        w = rng.random((8, 8)).astype("float32")

        s = te.create_schedule(C.op)
        c_ref = np.zeros((8, 8), dtype="float32")
        build(s, [A, W, C])(a, w, c_ref)

        A2, W2, B2, C2 = _scaled_matmul()
        s2 = te.create_schedule(C2.op)
        s2[B2].compute_inline()
        c_inl = np.zeros((8, 8), dtype="float32")
        build(s2, [A2, W2, C2])(a, w, c_inl)
        np.testing.assert_allclose(c_inl, c_ref, rtol=1e-6)
        np.testing.assert_allclose(c_inl, (2 * a) @ w, rtol=1e-5)

    def test_inline_chain(self, rng):
        # A -> B (=A+1) -> C (=B*3) -> D (sum); inline both B and C.
        A = te.placeholder((6, 4), name="A")
        B = te.compute((6, 4), lambda i, j: A[i, j] + 1.0, name="B")
        C = te.compute((6, 4), lambda i, j: B[i, j] * 3.0, name="C")
        k = te.reduce_axis((0, 4), name="k")
        D = te.compute((6,), lambda i: te.sum(C[i, k], axis=k), name="D")
        s = te.create_schedule(D.op)
        s[B].compute_inline()
        s[C].compute_inline()
        func = simplify_func(lower(s, [A, D]))
        assert _count_allocs(func) == 0
        a = rng.random((6, 4)).astype("float32")
        d = np.zeros(6, dtype="float32")
        build(s, [A, D])(a, d)
        np.testing.assert_allclose(d, ((a + 1) * 3).sum(axis=1), rtol=1e-5)

    def test_inline_with_index_remapping(self, rng):
        # The inlined stage is read transposed: axis substitution must remap.
        A = te.placeholder((5, 7), name="A")
        B = te.compute((5, 7), lambda i, j: A[i, j] * 2.0, name="B")
        C = te.compute((7, 5), lambda i, j: B[j, i] + 1.0, name="C")
        s = te.create_schedule(C.op)
        s[B].compute_inline()
        a = rng.random((5, 7)).astype("float32")
        c = np.zeros((7, 5), dtype="float32")
        build(s, [A, C])(a, c)
        np.testing.assert_allclose(c, (a * 2).T + 1, rtol=1e-6)

    def test_inline_into_tiled_consumer(self, rng):
        A, W, B, C = _scaled_matmul(8, 10, 6)
        s = te.create_schedule(C.op)
        s[B].compute_inline()
        y, x = s[C].op.axis
        kk = s[C].op.reduce_axis[0]
        yo, yi = s[C].split(y, 4)
        xo, xi = s[C].split(x, 5)
        s[C].reorder(yo, xo, kk, yi, xi)
        s[C].vectorize(xi)
        a = rng.random((8, 6)).astype("float32")
        w = rng.random((6, 10)).astype("float32")
        c = np.zeros((8, 10), dtype="float32")
        build(s, [A, W, C])(a, w, c)
        np.testing.assert_allclose(c, (2 * a) @ w, rtol=1e-5)

    def test_cannot_inline_reduction(self):
        _, _, _, C = _scaled_matmul()
        s = te.create_schedule(C.op)
        with pytest.raises(ScheduleError):
            s[C].compute_inline()

    def test_cannot_inline_transformed_stage(self):
        A, W, B, C = _scaled_matmul()
        s = te.create_schedule(C.op)
        s[B].split(s[B].op.axis[0], 2)
        with pytest.raises(ScheduleError):
            s[B].compute_inline()

    def test_cannot_inline_function_output(self):
        A, W, B, C = _scaled_matmul()
        s = te.create_schedule(C.op)
        s[B].compute_inline()
        with pytest.raises(LoweringError):
            lower(s, [A, W, B, C])  # B is a parameter but inlined
