"""Golden C sources: the native emitter's output is locked byte-for-byte.

Each golden is the full translation unit emitted for one paper kernel under
its seed-0 configuration (drawn deterministically from the registered
benchmark space), prefixed with a header recording the source content hash
(:func:`repro.tir.codegen_c.source_key` — the same hash that keys the
native build cache). Any change to the emitter, the LICM/CSE normalization,
or the lowering of these kernels shows up as a byte diff here.

Intentional changes regenerate the files::

    pytest tests/tir/test_codegen_c_goldens.py --update-goldens
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

from repro.kernels import problem_size
from repro.kernels.extra import gemm_tuned
from repro.kernels.registry import get_benchmark
from repro.kernels.stencil import jacobi2d_tuned
from repro.kernels.threemm import threemm_tuned
from repro.tir import lower, simplify_func
from repro.tir.codegen_c import codegen_c, source_key

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: kernel → (registered space to draw the seed-0 config from, small-shape
#: builder). Shapes match tests/tir/test_backend_parity.py so the goldens
#: stay readable (a few hundred lines, not mega-loop nests).
GOLDEN_CASES = {
    "3mm": ("3mm", "large", lambda cfg: threemm_tuned(problem_size("3mm", "mini"), cfg)),
    "gemm": ("gemm", "mini", lambda cfg: gemm_tuned(20, 25, 30, cfg)),
    "jacobi2d": ("jacobi2d", "mini", lambda cfg: jacobi2d_tuned(12, 2, cfg)),
}


def _seed0_config(kernel: str, size_name: str) -> dict[str, int]:
    bench = get_benchmark(kernel, size_name)
    rng = np.random.default_rng(0)
    return {
        p: bench.candidates[p][int(rng.integers(len(bench.candidates[p])))]
        for p in bench.params
    }


def _render_golden(name: str) -> str:
    kernel, size_name, make = GOLDEN_CASES[name]
    cfg = _seed0_config(kernel, size_name)
    sched, args = make(cfg)
    func = simplify_func(lower(sched, args))
    source = codegen_c(func)
    header = (
        f"// golden: {name} seed-0 config {cfg!r}\n"
        f"// source_key: {source_key(source)}\n"
    )
    return header + source


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_c_source(name, update_goldens):
    rendered = _render_golden(name)
    path = GOLDEN_DIR / f"{name}.c"
    if update_goldens:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
        return
    assert path.exists(), (
        f"missing golden {path}; regenerate with --update-goldens"
    )
    committed = path.read_text()
    assert committed == rendered, (
        f"{name}: emitted C diverged from the committed golden; if the "
        "change is intentional, regenerate with --update-goldens"
    )


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_header_hash_consistent(name):
    """The committed header's source_key matches the committed body."""
    path = GOLDEN_DIR / f"{name}.c"
    assert path.exists(), f"missing golden {path}"
    text = path.read_text()
    lines = text.splitlines(keepends=True)
    assert lines[1].startswith("// source_key: ")
    recorded = lines[1].split(": ", 1)[1].strip()
    body = "".join(lines[2:])
    assert source_key(body) == recorded
