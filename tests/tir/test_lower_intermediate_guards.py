"""Regression: over-covering splits of *intermediate* axes need guards.

Found by the schedule fuzzer: splitting an extent-1 axis (itself the inner
result of an earlier split) by a larger factor over-covers the intermediate
axis. The root-extent guard cannot catch this — the duplicate iterations land
on *valid* root values — so reductions double-accumulated. Lowering must guard
every over-covering split relation, root or intermediate, on both reduce and
data-parallel axes.
"""

import numpy as np
import pytest

import repro.te as te
from repro.runtime import build
from tests.conftest import make_matmul

N, M, K = 12, 10, 8


def _split_by_names(stage, splits):
    for name, factor in splits:
        iv = next(iv for iv in stage.leaf_iter_vars if iv.name == name)
        stage.split(iv, factor=factor)


@pytest.mark.parametrize(
    "splits",
    [
        # the fuzzer's falsifying example: k.inner has extent 1, split by 2
        [("k", 1), ("i", 1), ("k.inner", 2)],
        # over-covering split of an intermediate *data* axis in a reduce stage
        [("i", 1), ("i.inner", 3)],
        # non-dividing split of an intermediate reduce axis
        [("k", 3), ("k.outer", 2)],
        # mixed: non-dividing root split, then over-cover its inner
        [("k", 5), ("k.inner", 4), ("j", 7)],
        # deep chain of extent-1 reduce axes
        [("k", 1), ("k.inner", 2), ("k.inner.inner", 2)],
    ],
    ids=["fuzzer-example", "data-axis", "reduce-chain", "mixed", "deep-chain"],
)
@pytest.mark.parametrize("target", ["llvm", "interp"])
def test_overcovering_intermediate_split_stays_correct(splits, target):
    A, B, C = make_matmul(N, M, K)
    s = te.create_schedule(C.op)
    _split_by_names(s[C], splits)
    mod = build(s, [A, B, C], target=target)
    rng = np.random.default_rng(0)
    a = rng.random((N, K)).astype("float32")
    b = rng.random((K, M)).astype("float32")
    c = np.zeros((N, M), dtype="float32")
    mod(a, b, c)
    np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-6)


def test_exact_splits_stay_unguarded_fast_path():
    """Dividing splits must not grow guards (no perf regression on the paper's
    perfect-split spaces): the lowered body contains no IfThenElse."""
    from repro.tir.lower import lower
    from repro.tir.stmt import IfThenElse
    from repro.tir.transform import simplify_func

    A, B, C = make_matmul(N, M, K)
    s = te.create_schedule(C.op)
    _split_by_names(s[C], [("i", 4), ("j", 5), ("k", 2)])
    func = simplify_func(lower(s, [A, B, C]))

    found = []

    def walk(stmt):
        if isinstance(stmt, IfThenElse):
            found.append(stmt)
        for child in getattr(stmt, "__dict__", {}).values():
            if hasattr(child, "__dict__") and hasattr(type(child), "__mro__"):
                from repro.tir.stmt import Stmt

                if isinstance(child, Stmt):
                    walk(child)
            if isinstance(child, (list, tuple)):
                for c in child:
                    from repro.tir.stmt import Stmt

                    if isinstance(c, Stmt):
                        walk(c)

    walk(func.body)
    assert not found
