"""Differential battery: every backend tier computes the same answer.

Random configurations are drawn from the *registered* benchmark spaces (so
the tile factors are exactly the values the tuners explore, including ones
far larger than the loop extents) and instantiated on small problem shapes
where the reference interpreter finishes in milliseconds. Each instance is
lowered once and built under every explicitly pinned tier — tensorized,
vectorized-python codegen, interpreter — and all tiers must agree to
floating-point tolerance. The default ladder's tier decision must also be
deterministic: rebuilding the same PrimFunc always selects the same tier.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernels import problem_size
from repro.kernels.cholesky import cholesky_trailing_update_tuned
from repro.kernels.extra import gemm_tuned, syrk_tuned, trmm_tuned
from repro.kernels.lu import lu_trailing_update_tuned
from repro.kernels.registry import get_benchmark, list_benchmarks
from repro.kernels.stencil import jacobi2d_tuned
from repro.kernels.threemm import threemm_tuned
from repro.runtime.module import BACKEND_TIERS, build_from_primfunc
from repro.tir import lower, simplify_func
from repro.tir.codegen_c import NativeToolchainError, find_toolchain

SEED = 1234
N_CONFIGS = 4

try:
    find_toolchain()
    HAS_TOOLCHAIN = True
except NativeToolchainError:  # pragma: no cover - CI images ship gcc
    HAS_TOOLCHAIN = False

# Each family: (registered space to sample configs from, small-shape builder).
# The PolyBench plugin kernels sample from their mini spaces (the conformance
# preset) and run on mini-or-smaller shapes so the interpreter tier stays fast.
FAMILIES = {
    "lu": ("lu", "large", lambda cfg: lu_trailing_update_tuned(24, 20, 8, cfg)),
    "cholesky": ("cholesky", "large", lambda cfg: cholesky_trailing_update_tuned(24, 8, cfg)),
    "3mm": ("3mm", "large", lambda cfg: threemm_tuned(problem_size("3mm", "mini"), cfg)),
    "gemm": ("gemm", "mini", lambda cfg: gemm_tuned(20, 25, 30, cfg)),
    "syrk": ("syrk", "mini", lambda cfg: syrk_tuned(20, 30, cfg)),
    "trmm": ("trmm", "mini", lambda cfg: trmm_tuned(20, 30, cfg)),
    "jacobi2d": ("jacobi2d", "mini", lambda cfg: jacobi2d_tuned(12, 2, cfg)),
}


def _random_configs(kernel: str, size_name: str, rng) -> list[dict[str, int]]:
    bench = get_benchmark(kernel, size_name)
    return [
        {p: bench.candidates[p][int(rng.integers(len(bench.candidates[p])))]
         for p in bench.params}
        for _ in range(N_CONFIGS)
    ]


def _buffers(args, rng) -> list[np.ndarray]:
    return [
        rng.standard_normal(t.shape).astype(t.dtype)
        if i < len(args) - 1
        else np.zeros(t.shape, dtype=t.dtype)
        for i, t in enumerate(args)
    ]


class TestTierOutputParity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_all_tiers_agree_on_random_configs(self, family):
        kernel, size_name, make = FAMILIES[family]
        rng = np.random.default_rng(SEED)
        for cfg in _random_configs(kernel, size_name, rng):
            sched, args = make(cfg)
            func = simplify_func(lower(sched, args))
            outputs = {}
            selected = {}
            for tier in BACKEND_TIERS:
                mod = build_from_primfunc(func, backend=tier)
                # Pinning a tier still permits falling further down the
                # ladder (e.g. codegen -> interp on an unsupported nest),
                # but never climbing above the pin.
                assert BACKEND_TIERS.index(mod.backend) >= BACKEND_TIERS.index(tier)
                selected[tier] = mod.backend
                bufs = _buffers(args, np.random.default_rng(SEED))
                mod(*bufs)
                outputs[tier] = bufs[-1]
            # The ladder's fallback decision is a pure function of the
            # PrimFunc: a second build at each pin selects the same tier.
            for tier in BACKEND_TIERS:
                assert build_from_primfunc(func, backend=tier).backend == selected[tier]
            # The tensorized tier must cover the paper kernels outright, and
            # so must the native C tier whenever a toolchain exists.
            assert selected["tensor"] == "tensor", (
                f"{family} {cfg}: tensor tier fell back to {selected['tensor']}"
            )
            if HAS_TOOLCHAIN:
                assert selected["native"] == "native", (
                    f"{family} {cfg}: native tier fell back to "
                    f"{selected['native']}"
                )
            for tier in BACKEND_TIERS:
                if tier == "tensor":
                    continue
                np.testing.assert_allclose(
                    outputs[tier],
                    outputs["tensor"],
                    rtol=1e-9,
                    atol=1e-12,
                    err_msg=f"{family} {cfg}: {tier} disagrees with tensor",
                )

    def test_output_actually_nonzero(self):
        # Guard against the battery passing vacuously on all-zero outputs.
        kernel, size_name, make = FAMILIES["lu"]
        rng = np.random.default_rng(SEED)
        cfg = _random_configs(kernel, size_name, rng)[0]
        sched, args = make(cfg)
        func = simplify_func(lower(sched, args))
        mod = build_from_primfunc(func, backend="tensor")
        bufs = _buffers(args, np.random.default_rng(SEED))
        mod(*bufs)
        assert np.abs(bufs[-1]).max() > 0


class TestTierDecisionDeterminism:
    def test_registered_benchmarks_pick_same_tier_twice(self):
        """The ladder's fallback decision is a pure function of the PrimFunc."""
        rng = np.random.default_rng(SEED)
        for kernel, size_name in list_benchmarks():
            bench = get_benchmark(kernel, size_name)
            cfg = {p: bench.candidates[p][int(rng.integers(len(bench.candidates[p])))]
                   for p in bench.params}
            sched, args = bench.schedule_builder(cfg)
            func = simplify_func(lower(sched, args))
            first = build_from_primfunc(func).backend
            second = build_from_primfunc(func).backend
            assert first == second, f"{kernel}/{size_name} {cfg}: {first} != {second}"

    def test_small_instances_tier_decisions_stable(self):
        rng = np.random.default_rng(SEED)
        decisions = {}
        for family, (kernel, size_name, make) in sorted(FAMILIES.items()):
            for i, cfg in enumerate(_random_configs(kernel, size_name, rng)):
                sched, args = make(cfg)
                func = simplify_func(lower(sched, args))
                decisions[f"{family}#{i}"] = build_from_primfunc(func).backend
        # Same seed => same configs => same decisions on a second pass.
        rng = np.random.default_rng(SEED)
        for family, (kernel, size_name, make) in sorted(FAMILIES.items()):
            for i, cfg in enumerate(_random_configs(kernel, size_name, rng)):
                sched, args = make(cfg)
                func = simplify_func(lower(sched, args))
                assert build_from_primfunc(func).backend == decisions[f"{family}#{i}"]
