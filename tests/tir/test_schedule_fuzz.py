"""Schedule fuzzing: random legal transformation sequences stay correct.

Hypothesis drives a random sequence of schedule actions (split / fuse /
reorder / unroll / vectorize / parallel) on a matmul stage; whatever nest
results, the built module must still compute A @ B. This explores corners of
lowering (guard placement, init-nest positioning, annotation interactions)
no hand-written test enumerates.

The three-way differential classes extend this to the full backend ladder:
every fuzzed schedule (and every fuzzed config drawn from the registered
benchmark spaces) is built under explicit ``native``, ``tensor``, and
``interp`` pins, and all three outputs must agree. Schedule/config draws are
shrinking-friendly — each decision is one small integer draw, so hypothesis
minimizes a failing case to the shortest action sequence / lowest parameter
indices that still disagree. ``REPRO_FUZZ_EXAMPLES`` widens the per-test
example budget (CI's native-smoke job raises it to cover 200+ cases).
"""

import os

import numpy as np
from hypothesis import given, settings, strategies as st

import repro.te as te
from repro.common.errors import LoweringError, ScheduleError
from repro.kernels.registry import get_benchmark
from repro.runtime import build
from repro.runtime.module import build_from_primfunc
from repro.tir import lower, simplify_func
from tests.conftest import make_matmul
from tests.tir.test_backend_parity import FAMILIES, HAS_TOOLCHAIN, _buffers

N, M, K = 12, 10, 8

#: Example budget for the differential fuzz tests. The default keeps local
#: runs quick; CI's native-smoke job sets REPRO_FUZZ_EXAMPLES=110 so the two
#: three-way tests alone generate 220+ schedule×kernel cases.
FUZZ_EXAMPLES = int(os.environ.get("REPRO_FUZZ_EXAMPLES", "25"))

#: The differential tiers: the compiled-C tier, the production default, and
#: the reference interpreter. ("codegen" is covered by test_backend_parity.)
DIFF_TIERS = ("native", "tensor", "interp")


def _apply_random_actions(s, stage, data) -> None:
    """Apply up to 5 random legal actions; illegal draws are skipped."""
    n_actions = data.draw(st.integers(0, 5), label="n_actions")
    for step in range(n_actions):
        leaves = list(stage.leaf_iter_vars)
        action = data.draw(
            st.sampled_from(["split", "fuse", "reorder", "annotate"]),
            label=f"action{step}",
        )
        try:
            if action == "split":
                iv = data.draw(st.sampled_from(leaves), label=f"axis{step}")
                factor = data.draw(st.integers(1, 7), label=f"factor{step}")
                stage.split(iv, factor=factor)
            elif action == "fuse" and len(leaves) >= 2:
                i = data.draw(st.integers(0, len(leaves) - 2), label=f"fuse_at{step}")
                stage.fuse(leaves[i], leaves[i + 1])
            elif action == "reorder":
                perm = data.draw(st.permutations(leaves), label=f"perm{step}")
                stage.reorder(*perm)
            elif action == "annotate":
                iv = data.draw(st.sampled_from(leaves), label=f"ann_axis{step}")
                kind = data.draw(
                    st.sampled_from(["unroll", "parallel"]), label=f"ann{step}"
                )
                getattr(stage, kind)(iv)
        except ScheduleError:
            continue  # illegal draw for the current state: skip the action


class TestScheduleFuzz:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 10_000))
    def test_random_schedules_compute_matmul(self, data, seed):
        A, B, C = make_matmul(N, M, K)
        s = te.create_schedule(C.op)
        _apply_random_actions(s, s[C], data)
        try:
            mod = build(s, [A, B, C])
        except LoweringError:
            # e.g. a parallel/unroll annotation stranded non-innermost after
            # later actions; rejecting is correct behaviour, not a bug.
            return
        rng = np.random.default_rng(seed)
        a = rng.random((N, K)).astype("float32")
        b = rng.random((K, M)).astype("float32")
        c = np.zeros((N, M), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_schedules_interp_codegen_agree(self, data):
        A, B, C = make_matmul(N, M, K)
        s = te.create_schedule(C.op)
        _apply_random_actions(s, s[C], data)
        try:
            mod_cg = build(s, [A, B, C], target="llvm")
            mod_in = build(s, [A, B, C], target="interp")
        except LoweringError:
            return
        rng = np.random.default_rng(0)
        a = rng.random((N, K)).astype("float32")
        b = rng.random((K, M)).astype("float32")
        c1 = np.zeros((N, M), dtype="float32")
        c2 = np.zeros((N, M), dtype="float32")
        mod_cg(a, b, c1)
        mod_in(a, b, c2)
        np.testing.assert_allclose(c1, c2, rtol=1e-6)


class TestThreeWayDifferential:
    """native ≡ tensor ≡ interp on fuzzed schedules and fuzzed configs."""

    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 10_000))
    def test_random_schedules_all_tiers_agree(self, data, seed):
        A, B, C = make_matmul(N, M, K)
        s = te.create_schedule(C.op)
        _apply_random_actions(s, s[C], data)
        try:
            mods = {t: build(s, [A, B, C], backend=t) for t in DIFF_TIERS}
        except LoweringError:
            return  # annotation stranded illegally; rejection is correct
        if HAS_TOOLCHAIN:
            assert mods["native"].backend == "native", (
                f"native tier fell back to {mods['native'].backend}"
            )
        assert mods["interp"].backend == "interp"
        rng = np.random.default_rng(seed)
        a = rng.random((N, K)).astype("float32")
        b = rng.random((K, M)).astype("float32")
        outputs = {}
        for tier, mod in mods.items():
            c = np.zeros((N, M), dtype="float32")
            mod(a.copy(), b.copy(), c)
            outputs[tier] = c
        for tier in DIFF_TIERS:
            if tier == "tensor":
                continue
            np.testing.assert_allclose(
                outputs[tier],
                outputs["tensor"],
                rtol=1e-4,
                atol=1e-6,
                err_msg=f"{tier} disagrees with tensor",
            )

    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    @given(data=st.data())
    def test_random_configs_registered_kernels_agree(self, data):
        family = data.draw(st.sampled_from(sorted(FAMILIES)), label="family")
        kernel, size_name, make = FAMILIES[family]
        bench = get_benchmark(kernel, size_name)
        # One small index draw per tuning parameter: hypothesis shrinks a
        # failing config toward the lowest candidate of each parameter.
        cfg = {
            p: bench.candidates[p][
                data.draw(
                    st.integers(0, len(bench.candidates[p]) - 1), label=p
                )
            ]
            for p in bench.params
        }
        sched, args = make(cfg)
        func = simplify_func(lower(sched, args))
        outputs = {}
        for tier in DIFF_TIERS:
            mod = build_from_primfunc(func, backend=tier)
            if tier == "native" and HAS_TOOLCHAIN:
                assert mod.backend == "native", (
                    f"{family} {cfg}: native fell back to {mod.backend}"
                )
            bufs = _buffers(args, np.random.default_rng(99))
            mod(*bufs)
            outputs[tier] = bufs[-1]
        for tier in DIFF_TIERS:
            if tier == "tensor":
                continue
            np.testing.assert_allclose(
                outputs[tier],
                outputs["tensor"],
                rtol=1e-9,
                atol=1e-12,
                err_msg=f"{family} {cfg}: {tier} disagrees with tensor",
            )
