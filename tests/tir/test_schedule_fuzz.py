"""Schedule fuzzing: random legal transformation sequences stay correct.

Hypothesis drives a random sequence of schedule actions (split / fuse /
reorder / unroll / vectorize / parallel) on a matmul stage; whatever nest
results, the built module must still compute A @ B. This explores corners of
lowering (guard placement, init-nest positioning, annotation interactions)
no hand-written test enumerates.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

import repro.te as te
from repro.common.errors import LoweringError, ScheduleError
from repro.runtime import build
from tests.conftest import make_matmul

N, M, K = 12, 10, 8


def _apply_random_actions(s, stage, data) -> None:
    """Apply up to 5 random legal actions; illegal draws are skipped."""
    n_actions = data.draw(st.integers(0, 5), label="n_actions")
    for step in range(n_actions):
        leaves = list(stage.leaf_iter_vars)
        action = data.draw(
            st.sampled_from(["split", "fuse", "reorder", "annotate"]),
            label=f"action{step}",
        )
        try:
            if action == "split":
                iv = data.draw(st.sampled_from(leaves), label=f"axis{step}")
                factor = data.draw(st.integers(1, 7), label=f"factor{step}")
                stage.split(iv, factor=factor)
            elif action == "fuse" and len(leaves) >= 2:
                i = data.draw(st.integers(0, len(leaves) - 2), label=f"fuse_at{step}")
                stage.fuse(leaves[i], leaves[i + 1])
            elif action == "reorder":
                perm = data.draw(st.permutations(leaves), label=f"perm{step}")
                stage.reorder(*perm)
            elif action == "annotate":
                iv = data.draw(st.sampled_from(leaves), label=f"ann_axis{step}")
                kind = data.draw(
                    st.sampled_from(["unroll", "parallel"]), label=f"ann{step}"
                )
                getattr(stage, kind)(iv)
        except ScheduleError:
            continue  # illegal draw for the current state: skip the action


class TestScheduleFuzz:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), seed=st.integers(0, 10_000))
    def test_random_schedules_compute_matmul(self, data, seed):
        A, B, C = make_matmul(N, M, K)
        s = te.create_schedule(C.op)
        _apply_random_actions(s, s[C], data)
        try:
            mod = build(s, [A, B, C])
        except LoweringError:
            # e.g. a parallel/unroll annotation stranded non-innermost after
            # later actions; rejecting is correct behaviour, not a bug.
            return
        rng = np.random.default_rng(seed)
        a = rng.random((N, K)).astype("float32")
        b = rng.random((K, M)).astype("float32")
        c = np.zeros((N, M), dtype="float32")
        mod(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_random_schedules_interp_codegen_agree(self, data):
        A, B, C = make_matmul(N, M, K)
        s = te.create_schedule(C.op)
        _apply_random_actions(s, s[C], data)
        try:
            mod_cg = build(s, [A, B, C], target="llvm")
            mod_in = build(s, [A, B, C], target="interp")
        except LoweringError:
            return
        rng = np.random.default_rng(0)
        a = rng.random((N, K)).astype("float32")
        b = rng.random((K, M)).astype("float32")
        c1 = np.zeros((N, M), dtype="float32")
        c2 = np.zeros((N, M), dtype="float32")
        mod_cg(a, b, c1)
        mod_in(a, b, c2)
        np.testing.assert_allclose(c1, c2, rtol=1e-6)
