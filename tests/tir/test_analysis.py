"""Tests for TIR validation and guard hoisting."""

import numpy as np
import pytest

import repro.te as te
from repro.common.errors import LoweringError
from repro.te.expr import LT, Var, const
from repro.tir import hoist_guards, lower, simplify_func, validate_func
from repro.tir.stmt import (
    Buffer,
    BufferLoad,
    BufferStore,
    For,
    IfThenElse,
    PrimFunc,
    SeqStmt,
    visit_stmt,
)


def _store(buf, idx_exprs, value):
    return BufferStore(buf, value, tuple(idx_exprs))


class TestValidate:
    def test_lowered_kernels_validate(self, matmul):
        A, B, C = matmul
        func = simplify_func(lower(te.create_schedule(C.op), [A, B, C]))
        validate_func(func)  # must not raise

    def test_unbound_variable_detected(self):
        buf = Buffer("b", (4,), "float32")
        stray = Var("stray")
        body = _store(buf, [stray], const(1.0))
        with pytest.raises(LoweringError, match="unbound"):
            validate_func(PrimFunc("f", [buf], body))

    def test_rebound_loop_var_detected(self):
        buf = Buffer("b", (4,), "float32")
        v = Var("i")
        inner = For(v, const(0), const(4), "serial", _store(buf, [v], const(1.0)))
        outer = For(v, const(0), const(4), "serial", inner)
        with pytest.raises(LoweringError, match="rebound"):
            validate_func(PrimFunc("f", [buf], outer))

    def test_undeclared_buffer_detected(self):
        declared = Buffer("b", (4,), "float32")
        other = Buffer("ghost", (4,), "float32")
        v = Var("i")
        body = For(v, const(0), const(4), "serial", _store(other, [v], const(1.0)))
        with pytest.raises(LoweringError, match="undeclared"):
            validate_func(PrimFunc("f", [declared], body))

    def test_constant_index_out_of_range(self):
        buf = Buffer("b", (4,), "float32")
        body = _store(buf, [const(4)], const(1.0))  # valid indices are 0..3
        with pytest.raises(LoweringError, match="out of range"):
            validate_func(PrimFunc("f", [buf], body))

    def test_constant_load_index_checked(self):
        buf = Buffer("b", (4,), "float32")
        body = _store(buf, [const(0)], BufferLoad(buf, (const(9),)))
        with pytest.raises(LoweringError, match="out of range"):
            validate_func(PrimFunc("f", [buf], body))

    def test_duplicate_param_names_detected(self):
        b1 = Buffer("b", (4,), "float32")
        b2 = Buffer("b", (4,), "float32")
        with pytest.raises(LoweringError, match="duplicate"):
            validate_func(PrimFunc("f", [b1, b2], _store(b1, [const(0)], const(1.0))))


class TestHoistGuards:
    def _guard_depths(self, stmt):
        """Depth (number of enclosing Fors) of each IfThenElse."""
        depths = []

        def walk(s, depth):
            if isinstance(s, For):
                walk(s.body, depth + 1)
            elif isinstance(s, SeqStmt):
                for sub in s.stmts:
                    walk(sub, depth)
            elif isinstance(s, IfThenElse):
                depths.append(depth)
                walk(s.then_case, depth)
                if s.else_case is not None:
                    walk(s.else_case, depth)

        walk(stmt, 0)
        return depths

    def test_invariant_guard_moves_out(self):
        buf = Buffer("b", (4, 4), "float32")
        i, j = Var("i"), Var("j")
        guard = IfThenElse(LT(i, const(3)), _store(buf, [i, j], const(1.0)))
        nest = For(i, const(0), const(4), "serial", For(j, const(0), const(4), "serial", guard))
        out = hoist_guards(nest)
        # The guard depends only on i: it must sit directly inside the i loop.
        assert isinstance(out, For)
        assert isinstance(out.body, IfThenElse)
        assert isinstance(out.body.then_case, For)

    def test_variant_guard_stays(self):
        buf = Buffer("b", (4,), "float32")
        i = Var("i")
        guard = IfThenElse(LT(i, const(3)), _store(buf, [i], const(1.0)))
        nest = For(i, const(0), const(4), "serial", guard)
        out = hoist_guards(nest)
        assert isinstance(out, For)
        assert isinstance(out.body, IfThenElse)

    def test_guard_with_else_stays(self):
        buf = Buffer("b", (4, 4), "float32")
        i, j = Var("i"), Var("j")
        guard = IfThenElse(
            LT(i, const(3)),
            _store(buf, [i, j], const(1.0)),
            _store(buf, [i, j], const(2.0)),
        )
        nest = For(i, const(0), const(4), "serial", For(j, const(0), const(4), "serial", guard))
        out = hoist_guards(nest)
        assert isinstance(out.body, For)  # unchanged: else-guards not hoisted

    def test_semantics_preserved_on_guarded_kernel(self, rng):
        # Non-divisible split creates guards; results must be identical with
        # the hoisting pass in the standard pipeline vs. without.
        from repro.tir.interp import TIRInterpreter
        from tests.conftest import make_matmul

        A, B, C = make_matmul(12, 10, 8)
        s = te.create_schedule(C.op)
        s[C].split(s[C].op.axis[0], factor=5)
        s[C].split(s[C].op.axis[1], factor=7)
        raw = lower(s, [A, B, C])
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c1 = np.zeros((12, 10), dtype="float32")
        c2 = np.zeros((12, 10), dtype="float32")
        TIRInterpreter(raw)(a, b, c1)
        hoisted = PrimFunc(raw.name, raw.params, hoist_guards(raw.body), raw.attrs)
        TIRInterpreter(hoisted)(a, b, c2)
        np.testing.assert_array_equal(c1, c2)
        np.testing.assert_allclose(c1, a @ b, rtol=1e-5)

    def test_pipeline_reduces_guard_depth(self):
        from tests.conftest import make_matmul

        A, B, C = make_matmul(12, 10, 8)
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        k = s[C].op.reduce_axis[0]
        yo, yi = s[C].split(y, 5)  # 12 % 5 != 0 -> guard over (yo, yi)
        s[C].reorder(yo, k, yi, x)
        raw = lower(s, [A, B, C])
        hoisted = simplify_func(raw)
        assert min(self._guard_depths(hoisted.body)) <= min(
            self._guard_depths(raw.body)
        )
