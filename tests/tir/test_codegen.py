"""Tests for the Python/NumPy codegen backend, incl. differential properties.

The generated-code executor must agree bit-for-bit in structure (and to float
tolerance in values) with the reference interpreter on every schedule the
search can produce — that is the property hypothesis drives below.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.te as te
from repro.tir import lower, simplify_func
from repro.tir.codegen_py import CodegenUnsupported, build_callable, codegen_python
from repro.tir.interp import TIRInterpreter
from tests.conftest import make_matmul


def _matmul_schedule(ty, tx, vectorize, unroll=False, n=12, m=10, k=8):
    A, B, C = make_matmul(n, m, k)
    s = te.create_schedule(C.op)
    y, x = s[C].op.axis
    kk = s[C].op.reduce_axis[0]
    yo, yi = s[C].split(y, ty)
    xo, xi = s[C].split(x, tx)
    s[C].reorder(yo, xo, kk, yi, xi)
    if vectorize:
        s[C].vectorize(xi)
    elif unroll:
        s[C].unroll(xi)
    return s, [A, B, C]


def _run_both(sched, args, shapes, seed=0):
    func = simplify_func(lower(sched, args))
    rng = np.random.default_rng(seed)
    arrays1 = [rng.random(shape).astype("float32") for shape in shapes[:-1]]
    arrays1.append(np.zeros(shapes[-1], dtype="float32"))
    arrays2 = [a.copy() for a in arrays1]
    build_callable(func)(*arrays1)
    TIRInterpreter(func)(*arrays2)
    return arrays1[-1], arrays2[-1]


class TestCodegenBasics:
    def test_source_is_valid_python(self, matmul):
        A, B, C = matmul
        func = simplify_func(lower(te.create_schedule(C.op), [A, B, C]))
        src = codegen_python(func)
        compile(src, "<test>", "exec")
        assert "def main(" in src

    def test_matches_interpreter_plain(self):
        s, args = _matmul_schedule(4, 5, vectorize=False)
        got, ref = _run_both(s, args, [(12, 8), (8, 10), (12, 10)])
        np.testing.assert_allclose(got, ref, rtol=1e-6)

    def test_matches_interpreter_vectorized(self):
        s, args = _matmul_schedule(4, 5, vectorize=True)
        got, ref = _run_both(s, args, [(12, 8), (8, 10), (12, 10)])
        np.testing.assert_allclose(got, ref, rtol=1e-6)

    def test_matches_interpreter_unrolled(self):
        s, args = _matmul_schedule(3, 2, vectorize=False, unroll=True)
        got, ref = _run_both(s, args, [(12, 8), (8, 10), (12, 10)])
        np.testing.assert_allclose(got, ref, rtol=1e-6)

    def test_vectorized_reduction_lane(self):
        # Vectorize the stage whose lane feeds only the reduction value: the
        # codegen must emit a sum() update, not an elementwise store.
        A = te.placeholder((6, 8), name="A", dtype="float64")
        k = te.reduce_axis((0, 8), "k")
        ko_sums = te.compute((6,), lambda i: te.sum(A[i, k], axis=k), name="S")
        s = te.create_schedule(ko_sums.op)
        # reorder so the data-par axis is outer and k innermost, then the
        # lowering vectorizes nothing by default; directly mark nothing —
        # instead check via the matmul path below.
        func = simplify_func(lower(s, [A, ko_sums]))
        fn = build_callable(func)
        a = np.arange(48, dtype="float64").reshape(6, 8)
        out = np.zeros(6)
        fn(a, out)
        np.testing.assert_allclose(out, a.sum(axis=1))

    def test_guarded_vector_lane_falls_back(self):
        # Non-divisible split + vectorize -> guard over the lane, which the
        # vectorized-python codegen refuses; starting the ladder at the
        # "codegen" tier must fall back to the interpreter. The tensor tier
        # (the default) handles the same guard with a lane mask instead.
        from repro.runtime import build

        A, B, C = make_matmul(12, 10, 8)
        s = te.create_schedule(C.op)
        y, x = s[C].op.axis
        xo, xi = s[C].split(x, 7)  # 10 % 7 != 0 -> guard
        s[C].vectorize(xi)
        mod = build(s, [A, B, C], backend="codegen")
        assert mod.backend == "interp"
        default_mod = build(s, [A, B, C])
        assert default_mod.backend == "tensor"
        rng = np.random.default_rng(0)
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        for m in (mod, default_mod):
            c = np.zeros((12, 10), dtype="float32")
            m(a, b, c)
            np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_source_attached(self, matmul):
        A, B, C = matmul
        func = simplify_func(lower(te.create_schedule(C.op), [A, B, C]))
        fn = build_callable(func)
        assert "def main(" in fn.__source__


class TestCodegenDifferential:
    @settings(max_examples=25, deadline=None)
    @given(
        ty=st.sampled_from([1, 2, 3, 4, 6, 12]),
        tx=st.sampled_from([1, 2, 5, 7, 10]),
        vectorize=st.booleans(),
    )
    def test_tiled_matmul_agrees(self, ty, tx, vectorize):
        if vectorize and 10 % tx != 0:
            vectorize = False  # guard over lane unsupported by codegen
        s, args = _matmul_schedule(ty, tx, vectorize=vectorize)
        try:
            got, ref = _run_both(s, args, [(12, 8), (8, 10), (12, 10)])
        except CodegenUnsupported:
            return
        np.testing.assert_allclose(got, ref, rtol=1e-5)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        m=st.integers(min_value=2, max_value=10),
        k=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_unscheduled_matmul_matches_numpy(self, n, m, k, seed):
        A, B, C = make_matmul(n, m, k)
        func = simplify_func(lower(te.create_schedule(C.op), [A, B, C]))
        fn = build_callable(func)
        rng = np.random.default_rng(seed)
        a = rng.random((n, k)).astype("float32")
        b = rng.random((k, m)).astype("float32")
        c = np.zeros((n, m), dtype="float32")
        fn(a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-4, atol=1e-6)
