"""Tests for the reference TIR interpreter."""

import numpy as np
import pytest

import repro.te as te
from repro.common.errors import ExecutionError
from repro.tir import lower
from repro.tir.interp import TIRInterpreter


def _run(sched, args, *arrays):
    TIRInterpreter(lower(sched, list(args)))(*arrays)


class TestInterpreterExecution:
    def test_elementwise(self, rng):
        A = te.placeholder((4, 5), name="A")
        B = te.compute((4, 5), lambda i, j: A[i, j] * 2.0 + 1.0, name="B")
        a = rng.random((4, 5)).astype("float32")
        b = np.zeros((4, 5), dtype="float32")
        _run(te.create_schedule(B.op), [A, B], a, b)
        np.testing.assert_allclose(b, a * 2 + 1, rtol=1e-6)

    def test_matmul(self, matmul, rng):
        A, B, C = matmul
        a = rng.random((12, 8)).astype("float32")
        b = rng.random((8, 10)).astype("float32")
        c = np.zeros((12, 10), dtype="float32")
        _run(te.create_schedule(C.op), [A, B, C], a, b, c)
        np.testing.assert_allclose(c, a @ b, rtol=1e-5)

    def test_max_reduction(self, rng):
        A = te.placeholder((6, 7), name="A", dtype="float64")
        k = te.reduce_axis((0, 7), "k")
        M = te.compute((6,), lambda i: te.max_reduce(A[i, k], k), name="M")
        a = rng.random((6, 7))
        m = np.zeros(6)
        _run(te.create_schedule(M.op), [A, M], a, m)
        np.testing.assert_allclose(m, a.max(axis=1))

    def test_min_reduction(self, rng):
        A = te.placeholder((5, 4), name="A", dtype="float64")
        k = te.reduce_axis((0, 4), "k")
        M = te.compute((5,), lambda i: te.min_reduce(A[i, k], k), name="M")
        a = rng.random((5, 4))
        m = np.zeros(5)
        _run(te.create_schedule(M.op), [A, M], a, m)
        np.testing.assert_allclose(m, a.min(axis=1))

    def test_sqrt_intrinsic(self, rng):
        A = te.placeholder((8,), name="A", dtype="float64")
        B = te.compute((8,), lambda i: te.sqrt(A[i]), name="B")
        a = rng.random(8) + 0.5
        b = np.zeros(8)
        _run(te.create_schedule(B.op), [A, B], a, b)
        np.testing.assert_allclose(b, np.sqrt(a))

    def test_select(self, rng):
        A = te.placeholder((9,), name="A", dtype="float64")
        B = te.compute(
            (9,), lambda i: te.if_then_else(A[i] > 0.5, A[i], 0.0), name="B"
        )
        a = rng.random(9)
        b = np.zeros(9)
        _run(te.create_schedule(B.op), [A, B], a, b)
        np.testing.assert_allclose(b, np.where(a > 0.5, a, 0.0))

    def test_transposed_access(self, rng):
        A = te.placeholder((4, 6), name="A", dtype="float64")
        B = te.compute((6, 4), lambda i, j: A[j, i], name="B")
        a = rng.random((4, 6))
        b = np.zeros((6, 4))
        _run(te.create_schedule(B.op), [A, B], a, b)
        np.testing.assert_allclose(b, a.T)


class TestInterpreterErrors:
    def test_wrong_arg_count(self, matmul):
        A, B, C = matmul
        interp = TIRInterpreter(lower(te.create_schedule(C.op), [A, B, C]))
        with pytest.raises(ExecutionError):
            interp(np.zeros((12, 8), dtype="float32"))

    def test_wrong_shape(self, matmul):
        A, B, C = matmul
        interp = TIRInterpreter(lower(te.create_schedule(C.op), [A, B, C]))
        with pytest.raises(ExecutionError):
            interp(
                np.zeros((3, 3), dtype="float32"),
                np.zeros((8, 10), dtype="float32"),
                np.zeros((12, 10), dtype="float32"),
            )

    def test_wrong_dtype(self, matmul):
        A, B, C = matmul
        interp = TIRInterpreter(lower(te.create_schedule(C.op), [A, B, C]))
        with pytest.raises(ExecutionError):
            interp(
                np.zeros((12, 8), dtype="float64"),
                np.zeros((8, 10), dtype="float32"),
                np.zeros((12, 10), dtype="float32"),
            )
