"""Hypothesis property tests for the new kernels' configuration spaces.

Three invariants the registry subsystem leans on, checked over random seeds,
kernels, and index vectors:

* sampling stays in bounds — every sampled value is one of the declared
  candidates;
* :func:`~repro.configspace.space.space_hash` is invariant to hyperparameter
  declaration order (the conformance battery compares hashes across runs that
  may build spaces differently);
* :meth:`KernelBenchmark.config_from_indices` round-trips with the candidate
  lists — decode then re-encode recovers the same index vector.
"""

from hypothesis import given, settings, strategies as st

from repro.bench.polybench import PLUGIN_KERNELS
from repro.bench.registry import get_benchmark
from repro.configspace import ConfigurationSpace, OrdinalHyperparameter
from repro.configspace.space import space_hash

KERNELS = PLUGIN_KERNELS + ("3mm", "lu", "cholesky")
SIZES = ("mini", "small")

kernel_st = st.sampled_from(KERNELS)
size_st = st.sampled_from(SIZES)
seed_st = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=60, deadline=None)
@given(kernel=kernel_st, size=size_st, seed=seed_st)
def test_sampling_stays_in_bounds(kernel, size, seed):
    bench = get_benchmark(kernel, size)
    space = bench.config_space(seed=seed)
    configs, _ = space.sample_configuration_batch(8)
    for config in configs:
        for param in bench.params:
            assert config[param] in bench.candidates[param]


@settings(max_examples=60, deadline=None)
@given(kernel=kernel_st, size=size_st, data=st.data())
def test_space_hash_invariant_to_declaration_order(kernel, size, data):
    bench = get_benchmark(kernel, size)
    names = list(bench.params)
    order = data.draw(st.permutations(names))
    declared = ConfigurationSpace()
    for name in order:
        declared.add_hyperparameter(
            OrdinalHyperparameter(name, list(bench.candidates[name]))
        )
    assert space_hash(declared) == space_hash(bench.config_space(seed=0))


@settings(max_examples=60, deadline=None)
@given(kernel=kernel_st, size=size_st, data=st.data())
def test_config_from_indices_round_trips(kernel, size, data):
    bench = get_benchmark(kernel, size)
    indices = [
        data.draw(st.integers(0, len(bench.candidates[p]) - 1), label=p)
        for p in bench.params
    ]
    config = bench.config_from_indices(indices)
    assert list(config) == list(bench.params)
    recovered = [
        bench.candidates[p].index(config[p]) for p in bench.params
    ]
    assert recovered == indices


@settings(max_examples=30, deadline=None)
@given(kernel=kernel_st, size=size_st, seed=seed_st)
def test_space_hash_stable_across_builds(kernel, size, seed):
    bench = get_benchmark(kernel, size)
    assert space_hash(bench.config_space(seed=seed)) == space_hash(
        bench.config_space(seed=seed + 1)
    )
