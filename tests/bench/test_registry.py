"""Registry discovery, protocol conformance, and typed lookup errors."""

import pytest

from repro.bench import (
    Benchmark,
    BenchmarkEntry,
    TunerSpec,
    benchmark_entries,
    benchmark_entry,
    benchmark_names,
    benchmark_pairs,
    get_benchmark,
    get_tuner,
    register_benchmark,
    register_tuner,
    tuner_names,
    tuner_specs,
)
from repro.bench import registry as bench_registry
from repro.bench.polybench import PLUGIN_KERNELS
from repro.common.errors import RegistryError, ReproError
from repro.kernels.registry import KernelBenchmark

PAPER_KERNELS = ("3mm", "lu", "cholesky")
PAPER_TUNERS = (
    "ytopt", "AutoTVM-Random", "AutoTVM-GridSearch", "AutoTVM-GA", "AutoTVM-XGB"
)


@pytest.fixture(autouse=True)
def _isolated_registry():
    """Every test starts and ends with exactly the builtin registrations."""
    bench_registry._reset_for_tests()
    yield
    bench_registry._reset_for_tests()


class TestDiscovery:
    def test_seven_benchmarks_registered(self):
        names = benchmark_names()
        assert len(names) >= 7
        for kernel in PAPER_KERNELS + PLUGIN_KERNELS:
            assert kernel in names

    def test_seven_tuners_registered_paper_order_first(self):
        names = tuner_names()
        assert len(names) >= 7
        assert tuple(names[:5]) == PAPER_TUNERS
        assert "ytopt-gp" in names and "ytopt-tpe" in names

    def test_entries_and_specs_align_with_names(self):
        assert [e.kernel for e in benchmark_entries()] == benchmark_names()
        assert [s.name for s in tuner_specs()] == tuner_names()

    def test_benchmark_pairs_cover_all_sizes(self):
        pairs = benchmark_pairs()
        for kernel in PAPER_KERNELS + PLUGIN_KERNELS:
            for size in ("mini", "small", "medium", "large", "extralarge"):
                assert (kernel, size) in pairs

    def test_paper_vs_plugin_tags(self):
        for kernel in PAPER_KERNELS:
            assert "paper" in benchmark_entry(kernel).tags
        for kernel in PLUGIN_KERNELS:
            assert "plugin" in benchmark_entry(kernel).tags

    def test_tuner_families(self):
        for name in ("ytopt", "ytopt-gp", "ytopt-tpe"):
            assert get_tuner(name).family == "bo"
        for name in PAPER_TUNERS[1:]:
            assert get_tuner(name).family == "autotvm"

    def test_only_ytopt_supports_transfer(self):
        supports = [s.name for s in tuner_specs() if s.supports_transfer]
        assert supports == ["ytopt"]


class TestProtocolConformance:
    @pytest.mark.parametrize("kernel", PAPER_KERNELS + PLUGIN_KERNELS)
    def test_every_builtin_satisfies_benchmark_protocol(self, kernel):
        bench = get_benchmark(kernel, "mini")
        assert isinstance(bench, Benchmark)
        assert isinstance(bench, KernelBenchmark)
        assert bench.kernel == kernel
        assert bench.name == f"{kernel}-mini"
        assert bench.space_size() >= 1
        space = bench.config_space(seed=0)
        assert sorted(h.name for h in space.get_hyperparameters()) == sorted(
            bench.params
        )

    def test_kernels_registry_delegates_plugins(self):
        from repro.kernels import get_benchmark as kernels_get_benchmark

        bench = kernels_get_benchmark("gemm", "mini")
        assert bench.kernel == "gemm"
        assert isinstance(bench, Benchmark)


class TestTypedErrors:
    def test_unknown_benchmark(self):
        with pytest.raises(RegistryError) as exc:
            get_benchmark("nosuch", "mini")
        assert exc.value.kind == "benchmark"
        assert exc.value.requested == "nosuch"
        assert "gemm" in exc.value.available
        assert "nosuch" in str(exc.value) and "gemm" in str(exc.value)

    def test_unknown_size(self):
        with pytest.raises(RegistryError) as exc:
            get_benchmark("gemm", "nosuch")
        assert exc.value.requested == "nosuch"
        assert "mini" in exc.value.available

    def test_unknown_tuner(self):
        with pytest.raises(RegistryError) as exc:
            get_tuner("nosuch")
        assert exc.value.kind == "tuner"
        assert "ytopt" in exc.value.available

    def test_registry_error_is_repro_error(self):
        # Callers catching the project-wide base keep working.
        with pytest.raises(ReproError):
            get_tuner("nosuch")


class TestRegistration:
    def _entry(self, kernel="custom"):
        gemm = benchmark_entry("gemm")
        return BenchmarkEntry(
            kernel=kernel,
            sizes=("mini",),
            factory=gemm.factory,
            description="user plugin",
            tags=("test",),
        )

    def test_register_and_lookup_roundtrip(self):
        register_benchmark(self._entry())
        assert "custom" in benchmark_names()
        assert get_benchmark("custom", "mini").kernel == "gemm"

    def test_duplicate_benchmark_rejected_without_replace(self):
        register_benchmark(self._entry())
        with pytest.raises(RegistryError, match="already registered"):
            register_benchmark(self._entry())
        register_benchmark(self._entry(), replace=True)  # explicit replace ok

    def test_duplicate_tuner_rejected_without_replace(self):
        spec = TunerSpec(
            name="custom-tuner",
            family="bo",
            description="user tuner",
            factory=get_tuner("ytopt").factory,
        )
        register_tuner(spec)
        assert "custom-tuner" in tuner_names()
        with pytest.raises(RegistryError, match="already registered"):
            register_tuner(spec)
        register_tuner(spec, replace=True)

    def test_user_registrations_append_after_builtins(self):
        register_tuner(
            TunerSpec(
                name="aaa-first-alphabetically",
                family="bo",
                description="",
                factory=get_tuner("ytopt").factory,
            )
        )
        names = tuner_names()
        # Paper order stays first even for alphabetically-earlier additions.
        assert tuple(names[:5]) == PAPER_TUNERS
        assert names[-1] != "ytopt" and "aaa-first-alphabetically" in names[5:]


class TestServiceAdmission:
    def test_jobspec_accepts_any_registered_pair(self):
        from repro.service.jobs import JobSpec

        JobSpec(kernel="jacobi2d", size="mini", tuner="ytopt-tpe").validate()
        JobSpec(kernel="syrk", size="small", tuner="ytopt-gp").validate()

    def test_jobspec_rejects_unregistered(self):
        from repro.service.jobs import JobRejected, JobSpec

        with pytest.raises(JobRejected, match="unknown kernel"):
            JobSpec(kernel="nosuch", size="mini").validate()
        with pytest.raises(JobRejected, match="unknown size"):
            JobSpec(kernel="gemm", size="nosuch").validate()
        with pytest.raises(JobRejected, match="unknown tuner"):
            JobSpec(kernel="gemm", size="mini", tuner="nosuch").validate()
