"""The cross-product conformance battery, run as tier-1 tests.

Every registered benchmark × every registered tuner runs twice on the quick
preset (mini size, 12 evaluations, seed 0) through the full service path; the
battery asserts trajectory determinism, exact budget accounting (pruned and
probe rows count), space-hash stability, and byte-stable report regeneration.
"""

import collections

import pytest

from repro.bench import registry as bench_registry
from repro.bench.conformance import (
    QUICK,
    ConformancePreset,
    battery_pairs,
    battery_report,
    run_battery,
    run_pair,
    trajectory_json,
)
from repro.configspace.space import space_hash
from repro.kernels import get_benchmark
from repro.telemetry import RunStore


@pytest.fixture(scope="module")
def battery_runs():
    """One battery sweep, shared by the module's assertions."""
    return run_battery(QUICK)


class TestBatteryGrid:
    def test_grid_is_the_full_cross_product(self):
        pairs = battery_pairs()
        kernels = bench_registry.benchmark_names()
        tuners = bench_registry.tuner_names()
        assert len(kernels) >= 7 and len(tuners) >= 7
        assert len(pairs) == len(kernels) * len(tuners)
        assert set(pairs) == {(k, t) for k in kernels for t in tuners}

    def test_every_pair_completes_on_budget(self, battery_runs):
        assert len(battery_runs) == len(battery_pairs())
        for run in battery_runs:
            assert run.n_evals == QUICK.max_evals, f"{run.kernel}/{run.tuner}"
            assert len(run.trajectory) == QUICK.max_evals
            assert run.best_runtime > 0
            assert run.best_config  # a real configuration, not an empty dict

    def test_seed0_trajectories_byte_identical_across_runs(self, battery_runs):
        second = run_battery(QUICK)
        for a, b in zip(battery_runs, second):
            assert trajectory_json(a) == trajectory_json(b), (
                f"{a.kernel}/{a.tuner}: seed-0 rerun diverged"
            )

    def test_space_hash_stable_across_runs_and_seeds(self):
        for kernel in bench_registry.benchmark_names():
            hashes = {
                space_hash(get_benchmark(kernel, QUICK.size).config_space(seed=s))
                for s in (0, 1, 1234)
            }
            assert len(hashes) == 1, f"{kernel}: space hash depends on the seed"


class TestBudgetAccounting:
    def test_pruned_rows_count_against_the_budget(self, tmp_path):
        preset = ConformancePreset(max_evals=30, prune=True, prune_threshold=1.0)
        store_path = tmp_path / "prune.db"
        run = run_pair("3mm", "ytopt", preset, store_path=str(store_path))
        with RunStore(store_path) as store:
            rows = store.evaluations(store.runs()[0].run_id)
        fidelity = collections.Counter(r.fidelity for r in rows)
        assert fidelity["pruned"] > 0, "aggressive pruning never fired"
        assert run.n_evals == preset.max_evals
        assert len(rows) == preset.max_evals  # pruned rows are charged rows

    def test_probe_rows_count_against_the_budget(self, tmp_path):
        preset = ConformancePreset(max_evals=14, repeats=3, probe_repeats=1)
        store_path = tmp_path / "probe.db"
        run = run_pair("3mm", "ytopt", preset, store_path=str(store_path))
        with RunStore(store_path) as store:
            rows = store.evaluations(store.runs()[0].run_id)
        fidelity = collections.Counter(r.fidelity for r in rows)
        assert fidelity["probe"] > 0
        assert fidelity["probe"] + fidelity["promoted"] + fidelity["full"] == (
            preset.max_evals
        )
        assert run.n_evals == preset.max_evals
        assert all(r.low_fidelity for r in rows if r.fidelity == "probe")


class TestReportRegeneration:
    def test_battery_report_is_pure(self, battery_runs):
        assert battery_report(battery_runs) == battery_report(battery_runs)
        report = battery_report(battery_runs, QUICK)
        n = len(battery_runs)
        assert f"{n} runs over" in report
        for run in battery_runs:
            assert f"| {run.kernel} | {run.tuner} |" in report

    def test_store_tables_regenerate_byte_identically(self, tmp_path):
        from repro.telemetry.report import report_text

        pairs = [("gemm", "ytopt"), ("gemm", "ytopt-gp"), ("gemm", "ytopt-tpe")]
        run_battery(QUICK, store_dir=tmp_path / "a", pairs=pairs)
        run_battery(QUICK, store_dir=tmp_path / "b", pairs=pairs)
        texts = []
        for d in ("a", "b"):
            parts = []
            for kernel, tuner in pairs:
                with RunStore(tmp_path / d / f"{kernel}-{tuner}.db") as store:
                    parts.append(report_text(store))
            texts.append("\n".join(parts))
        # Same preset, same seed -> the stored runs regenerate the same tables.
        assert texts[0] == texts[1]

    def test_cli_entry_writes_the_report_artifact(self, tmp_path):
        from repro.bench.conformance import main

        report_path = tmp_path / "report.md"
        rc = main([
            "--max-evals", "11", "--report", str(report_path),
            "--store-dir", str(tmp_path / "shards"),
        ])
        assert rc == 0
        text = report_path.read_text()
        assert "max_evals=11" in text
        n_pairs = len(battery_pairs())
        assert f"{n_pairs} runs over" in text
        assert len(list((tmp_path / "shards").glob("*.db"))) == n_pairs
