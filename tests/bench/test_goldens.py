"""Golden determinism for the new surrogate families (GP + TPE).

The committed files under ``goldens/`` are seed-0 quick-preset trajectories
(canonical JSON via :func:`repro.bench.conformance.trajectory_json`). A live
run must reproduce them byte-for-byte — any drift in the GP fit, the TPE
density split, the evaluator pricing, or the JSON canonicalization fails here
first, with a diffable artifact.

Regenerate intentionally with::

    PYTHONPATH=src python - <<'PY'
    from pathlib import Path
    from repro.bench.conformance import QUICK, run_pair, trajectory_json
    for kernel in ("gemm", "3mm"):
        for tuner in ("ytopt-gp", "ytopt-tpe"):
            run = run_pair(kernel, tuner, QUICK)
            Path(f"tests/bench/goldens/{kernel}-{tuner}-seed0.json").write_text(
                trajectory_json(run) + "\n")
    PY
"""

import json
from pathlib import Path

import pytest

from repro.bench.conformance import QUICK, run_pair, trajectory_json

GOLDEN_DIR = Path(__file__).parent / "goldens"
GOLDEN_PAIRS = [
    ("gemm", "ytopt-gp"),
    ("gemm", "ytopt-tpe"),
    ("3mm", "ytopt-gp"),
    ("3mm", "ytopt-tpe"),
]


@pytest.mark.parametrize("kernel,tuner", GOLDEN_PAIRS)
def test_seed0_trajectory_matches_golden_bytes(kernel, tuner):
    golden_path = GOLDEN_DIR / f"{kernel}-{tuner}-seed0.json"
    golden = golden_path.read_text()
    live = trajectory_json(run_pair(kernel, tuner, QUICK)) + "\n"
    assert live == golden, (
        f"{kernel}/{tuner} seed-0 trajectory drifted from {golden_path.name}; "
        f"if the change is intentional, regenerate the golden (see module "
        f"docstring)"
    )


@pytest.mark.parametrize("kernel,tuner", GOLDEN_PAIRS)
def test_golden_files_are_canonical_and_on_budget(kernel, tuner):
    payload = json.loads((GOLDEN_DIR / f"{kernel}-{tuner}-seed0.json").read_text())
    assert payload["kernel"] == kernel
    assert payload["tuner"] == tuner
    assert payload["n_evals"] == QUICK.max_evals
    assert len(payload["trajectory"]) == QUICK.max_evals
    # Canonical form: sorted keys, no whitespace (byte-comparable forever).
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    assert (GOLDEN_DIR / f"{kernel}-{tuner}-seed0.json").read_text() == (
        canonical + "\n"
    )
