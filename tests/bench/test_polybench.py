"""PolyBench plugin kernels: numerical correctness and model landscapes.

Each plugin benchmark's TE schedule executes at mini size and must match its
numpy PolyBench reference (:func:`repro.bench.polybench.reference_check` is
the battery's correctness oracle); the Swing profile must price tile choices
distinctly so the tuners have a real landscape to search.
"""

import numpy as np
import pytest

from repro.bench.polybench import (
    _JACOBI_EXEC_TSTEPS,
    PLUGIN_KERNELS,
    reference_check,
)
from repro.bench.registry import get_benchmark
from repro.common.errors import RegistryError
from repro.kernels.problem_sizes import problem_size
from repro.runtime import build
from repro.service.session import make_evaluator

SIZE = "mini"


def _mid_config(bench):
    """A mid-range tile from each parameter's candidate list."""
    return {p: bench.candidates[p][len(bench.candidates[p]) // 2]
            for p in bench.params}


def _execute(bench, config):
    """Build and run the benchmark's schedule; returns (output, inputs)."""
    sched, args = bench.schedule_builder(config)
    rng = np.random.default_rng(7)
    bufs = [rng.standard_normal(t.shape).astype(t.dtype) for t in args[:-1]]
    bufs.append(np.zeros(args[-1].shape, dtype=args[-1].dtype))
    mod = build(sched, args)
    mod(*bufs)
    inputs = {t.name: b for t, b in zip(args[:-1], bufs[:-1])}
    return bufs[-1], inputs


class TestReferenceChecks:
    @pytest.mark.parametrize("kernel", PLUGIN_KERNELS)
    def test_schedule_matches_numpy_reference(self, kernel):
        bench = get_benchmark(kernel, SIZE)
        output, inputs = _execute(bench, _mid_config(bench))
        reference_check(kernel, SIZE, output, inputs)

    @pytest.mark.parametrize("kernel", PLUGIN_KERNELS)
    def test_extreme_tiles_match_too(self, kernel):
        # Largest candidate tiles (often bigger than the loop extents — the
        # clamped-factor path) must not change the computed answer.
        bench = get_benchmark(kernel, SIZE)
        config = {p: bench.candidates[p][-1] for p in bench.params}
        output, inputs = _execute(bench, config)
        reference_check(kernel, SIZE, output, inputs)

    def test_reference_check_catches_corruption(self):
        bench = get_benchmark("gemm", SIZE)
        output, inputs = _execute(bench, _mid_config(bench))
        output[0, 0] += 1.0
        with pytest.raises(AssertionError):
            reference_check("gemm", SIZE, output, inputs)

    def test_reference_check_unknown_kernel(self):
        with pytest.raises(RegistryError):
            reference_check("nosuch", SIZE, np.zeros(1), {})


class TestProfiles:
    @pytest.mark.parametrize("kernel", PLUGIN_KERNELS)
    def test_profile_aligns_with_benchmark(self, kernel):
        bench = get_benchmark(kernel, SIZE)
        assert bench.profile.kernel == kernel
        assert bench.profile.param_candidates == bench.candidates
        assert bench.profile.paper_best is None  # not reported by the paper
        stage = bench.profile.stages[0]
        assert stage.flops > 0

    def test_jacobi2d_pseudo_stage_folds_all_sweeps(self):
        size = problem_size("jacobi2d", SIZE)
        stage = get_benchmark("jacobi2d", SIZE).profile.stages[0]
        assert stage.m == size.n * size.tsteps
        assert stage.n == size.n
        assert stage.k == 5  # the 5-point neighborhood
        assert stage.launches == size.tsteps

    def test_jacobi2d_execution_caps_sweeps(self):
        # The model prices all tsteps sweeps; real execution caps them so
        # LocalEvaluator runs stay fast. The reference check uses the same cap.
        size = problem_size("jacobi2d", SIZE)
        sched, args = get_benchmark("jacobi2d", SIZE).schedule_builder(
            {"P0": 4, "P1": 4}
        )
        assert size.tsteps > _JACOBI_EXEC_TSTEPS
        assert len(args) == 2  # [A, final sweep] — stages chained in between

    @pytest.mark.parametrize("kernel", PLUGIN_KERNELS)
    def test_landscape_is_not_flat(self, kernel):
        # The simulated A100 must price different tiles differently, or the
        # whole tuning exercise on these kernels is vacuous.
        bench = get_benchmark(kernel, SIZE)
        evaluator = make_evaluator(bench, for_autotvm=False, model=None, seed=0)
        costs = set()
        for p0 in bench.candidates["P0"]:
            for p1 in bench.candidates["P1"][:2]:
                result = evaluator.evaluate({"P0": p0, "P1": p1})
                costs.add(min(result.costs))
        assert len(costs) > 1
